"""hamming_distance vs brute force and known CRC facts."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf2.poly import degree, divisible_by_x_plus_1
from repro.hd.hamming import hamming_distance, hd_profile
from repro.hd.weights import brute_force_weights

gen_polys = st.integers(min_value=0b10011, max_value=(1 << 11) - 1).filter(
    lambda p: p & 1
)


def brute_hd(g: int, n: int, k_max: int = 8) -> int:
    w = brute_force_weights(g, n, k_max)
    for k in range(2, k_max + 1):
        if w[k]:
            return k
    raise AssertionError("HD beyond k_max")


class TestAgainstBruteForce:
    @given(gen_polys, st.integers(min_value=2, max_value=18))
    @settings(max_examples=120, deadline=None)
    def test_agreement(self, g, n):
        if n + degree(g) > 26:
            return
        try:
            expected = brute_hd(g, n)
        except AssertionError:
            return
        assert hamming_distance(g, n, k_max=8) == expected

    @given(gen_polys, st.integers(min_value=2, max_value=14))
    @settings(max_examples=60, deadline=None)
    def test_parity_flag_never_changes_answer(self, g, n):
        if n + degree(g) > 24:
            return
        try:
            with_parity = hamming_distance(g, n, k_max=8, exploit_parity=True)
            without = hamming_distance(g, n, k_max=8, exploit_parity=False)
        except ValueError:
            return
        assert with_parity == without


class TestKnownValues:
    def test_crc8_atm_hd(self):
        # 0x107: HD=4 through 119 bits, HD=2 beyond (order 127).
        g = 0x107
        assert hamming_distance(g, 10) == 4
        assert hamming_distance(g, 119) == 4
        assert hamming_distance(g, 120) == 2

    def test_crc16_ccitt_hd(self):
        # x^16+x^12+x^5+1 = (x+1)(x^15+x^14+x^13+x^12+x^4+x^3+x^2+x+1):
        # the classic HD=4 to 32751 bits CCITT behaviour at short lengths.
        g = 0x11021
        assert hamming_distance(g, 100) == 4
        assert hamming_distance(g, 1000) == 4

    def test_hd_monotone_nonincreasing(self):
        g = 0x107
        hds = [hamming_distance(g, n) for n in (5, 20, 80, 119, 130)]
        assert hds == sorted(hds, reverse=True)

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            hamming_distance(0x107, 0)

    def test_kmax_exceeded(self):
        # x+1 alone detects only parity: HD=2 everywhere; but a huge
        # generator at tiny length can exceed small k_max.
        with pytest.raises(ValueError):
            hamming_distance(0x104C11DB7, 2, k_max=3)


class TestProfile:
    def test_profile_shape(self):
        prof = hd_profile(0x107, [10, 50, 119, 125])
        assert prof == {10: 4, 50: 4, 119: 4, 125: 2}


class TestBound:
    def test_bound_is_exact_when_feasible(self):
        from repro.hd.hamming import hamming_distance_bound

        hd, exact = hamming_distance_bound(0x107, 50)
        assert (hd, exact) == (4, True)

    def test_bound_degrades_at_envelope(self):
        from repro.hd.hamming import hamming_distance_bound

        # tiny envelope: the weight-4 check at 500 bits is unaffordable,
        # so we get a verified HD >= 4 lower bound instead of an answer
        g = 0x11021  # CCITT: true HD is 4 at 500 bits
        hd, exact = hamming_distance_bound(
            g, 500, mem_elems=10_000, stream_elems=10_000,
            witness_window=3,
        )
        assert not exact
        assert hd >= 3

    def test_bound_respects_kmax(self):
        from repro.hd.hamming import hamming_distance_bound

        # HD of 802.3 at 91 bits is >= 8; with k_max=5 we learn only that
        from repro.gf2.notation import koopman_to_full

        hd, exact = hamming_distance_bound(
            koopman_to_full(0x82608EDB), 91, k_max=5
        )
        assert (hd, exact) == (6, False)

    def test_bound_weight2_exact(self):
        from repro.hd.hamming import hamming_distance_bound

        assert hamming_distance_bound(0x107, 150) == (2, True)
