"""Tests for the §4.5 validation invariants."""

from __future__ import annotations

import pytest

from repro.hd.invariants import (
    InvariantViolation,
    WeightMonitor,
    check_monotonic_weights,
    check_parity_invariant,
)


class TestParityInvariant:
    def test_parity_poly_with_zero_odd_weights_passes(self):
        check_parity_invariant(0x107, {2: 0, 3: 0, 4: 7})

    def test_parity_poly_with_nonzero_odd_weight_raises(self):
        with pytest.raises(InvariantViolation, match="W3=1"):
            check_parity_invariant(0x107, {2: 0, 3: 1, 4: 7})

    def test_non_parity_poly_unconstrained(self):
        check_parity_invariant(0b1011, {3: 99})


class TestMonotonicity:
    def test_nondecreasing_passes(self):
        check_monotonic_weights([(10, {4: 1}), (20, {4: 1}), (30, {4: 8})])

    def test_decrease_raises(self):
        with pytest.raises(InvariantViolation, match="W4 decreased"):
            check_monotonic_weights([(10, {4: 5}), (20, {4: 3})])

    def test_unordered_input_is_sorted(self):
        check_monotonic_weights([(30, {4: 9}), (10, {4: 1})])

    def test_disjoint_keys_ignored(self):
        check_monotonic_weights([(10, {3: 5}), (20, {4: 1})])


class TestMonitor:
    def test_accumulates(self):
        m = WeightMonitor(0x107)
        m.observe(10, {2: 0, 3: 0, 4: 0})
        m.observe(20, {2: 0, 3: 0, 4: 3})
        assert m.checks_passed == 2

    def test_catches_regression(self):
        m = WeightMonitor(0x107)
        m.observe(20, {4: 5})
        with pytest.raises(InvariantViolation):
            m.observe(30, {4: 4})

    def test_real_weights_pass(self):
        from repro.hd.weights import weight_profile

        m = WeightMonitor(0x107)
        for n in (20, 40, 80, 110):
            m.observe(n, weight_profile(0x107, n, 4))
        assert m.checks_passed == 4

    def test_counter_overflow_detection(self):
        # The paper's war story: a 32-bit counter would have wrapped.
        m = WeightMonitor(0x107)
        with pytest.raises(InvariantViolation, match="overflow"):
            m.saturating_observe(50, {4: 1 << 33}, bits=32)
