"""Cost-model tests, anchored on the paper's own arithmetic."""

from __future__ import annotations

from math import comb

import pytest

from repro.hd.cost import (
    EnvelopeError,
    check_envelope,
    enumeration_cost,
    enumeration_speedup,
    mitm_cost,
    mitm_sorted_side,
)


class TestEnumerationCost:
    def test_paper_weight6_count(self):
        # §3: "all combinations of 12144 bits taken 6 at a time
        # (4.45e21)"
        assert enumeration_cost(12144, 6) == comb(12144, 6)
        assert abs(enumeration_cost(12144, 6) / 4.45e21 - 1) < 0.01

    def test_paper_weight4_count(self):
        # §3's "906 10^12" (typeset-garbled) count of possible 4-bit
        # errors across a 12144-bit codeword: C(12144,4) ~ 9.06e14.
        assert abs(enumeration_cost(12144, 4) / 9.058e14 - 1) < 0.01

    def test_paper_17500x_speedup(self):
        # §4.1: filtering at 1024 bits "almost 17,500 times faster"
        # than at 12112 bits.
        s = enumeration_speedup(1024 + 32, 12112 + 32, 4)
        assert 17000 < s < 17600


class TestMitmCost:
    def test_exponent_halving(self):
        # weight-5 checks stream pairs, not quadruples
        assert mitm_cost(1000, 5) == comb(999, 2)
        assert mitm_sorted_side(1000, 5) == comb(999, 2)

    def test_weight4_asymmetric_split(self):
        assert mitm_sorted_side(1000, 4) == comb(999, 1)
        assert mitm_cost(1000, 4) == comb(999, 2)

    def test_ba0dc66b_check_is_feasible(self):
        # the paper's "19 days" confirmation at 16360 bits is ~1.3e8
        # streamed elements for the MITM engine
        work = mitm_cost(16360 + 32, 4)
        assert work < 2e8


class TestEnvelope:
    def test_within(self):
        check_envelope(1000, 5)

    def test_memory_exceeded(self):
        with pytest.raises(EnvelopeError, match="sorted side"):
            check_envelope(100_000, 5, mem_elems=10**6)

    def test_stream_exceeded(self):
        with pytest.raises(EnvelopeError, match="streams"):
            check_envelope(100_000, 6, mem_elems=10**18, stream_elems=10**9)
