"""The jump engine: random access vs linear tables, and breakpoint
identity against the collect-all reference.

Two layers of guarantees:

* ``syndrome_at`` / ``syndrome_window`` (matrix jump + local LFSR)
  must equal slices of ``syndrome_table`` / ``extend_syndrome_table``
  at arbitrary lengths -- the LFSR sweep and the GF(2) matrix ladder
  are independent implementations of the same recurrence.
* ``first_failure_jump`` (windowed probes + span bisection) must give
  the same ``(n, cleared, capped)`` as probing every geometric window
  with ``minimal_codeword_span`` -- the engine it replaced.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf2.poly import degree, divisible_by_x_plus_1
from repro.gf2.order import order_of_x
from repro.hd.breakpoints import (
    FirstFailure,
    first_failure_detailed,
    first_failure_length,
    increasing_length_filter,
    max_length_for_hd,
)
from repro.hd.cost import EnvelopeError, max_affordable_window
from repro.hd.jump import (
    SpanCache,
    first_failure_jump,
    refine_span,
    syndrome_at,
    syndrome_window,
)
from repro.hd.mitm import minimal_codeword_span
from repro.hd.syndromes import extend_syndrome_table, syndrome_table


@st.composite
def odd_polys(draw, min_degree=3, max_degree=20):
    r = draw(st.integers(min_value=min_degree, max_value=max_degree))
    interior = draw(st.integers(min_value=0, max_value=(1 << r) - 1))
    return (1 << r) | interior | 1


class TestRandomAccess:
    @given(odd_polys(max_degree=32), st.integers(min_value=0, max_value=5000))
    @settings(max_examples=60, deadline=None)
    def test_syndrome_at_matches_table(self, g, n):
        table = syndrome_table(g, n + 1)
        assert syndrome_at(g, n) == int(table[n])

    @given(
        odd_polys(max_degree=32),
        st.integers(min_value=0, max_value=10**7),
        st.integers(min_value=0, max_value=64),
    )
    @settings(max_examples=60, deadline=None)
    def test_window_matches_extended_table(self, g, start, count):
        window = syndrome_window(g, start, count)
        assert window.dtype == np.uint64
        if start + count <= 20000:
            table = syndrome_table(g, start + count)
            np.testing.assert_array_equal(window, table[start:])
        else:
            # Too far to sweep linearly in a test: check the endpoints
            # against the (independently tested) ladder.
            for i in (0, count - 1) if count else ():
                assert int(window[i]) == syndrome_at(g, start + i)

    @given(odd_polys(), st.integers(min_value=1, max_value=400),
           st.integers(min_value=1, max_value=400))
    @settings(max_examples=40, deadline=None)
    def test_span_cache_extends_not_rebuilds(self, g, n1, n2):
        cache = SpanCache(g)
        t1 = cache.table(n1)
        t2 = cache.table(n2)
        assert len(t2) >= max(n1, n2)
        np.testing.assert_array_equal(
            t2[: max(n1, n2)], syndrome_table(g, max(n1, n2))
        )


def reference_first_failure(g, k, *, n_max, mem_elems, stream_elems):
    """The engine first_failure_jump replaced: identical geometric
    schedule, collect-all span scan at every window."""
    r = degree(g)
    n_limit = n_max + r
    affordable = max_affordable_window(k, mem_elems, stream_elems)
    if k >= 12:
        window, growth = max(2 * k, r + 8), 1.25
    elif k >= 9:
        window, growth = max(2 * k, r + 8), 1.5
    else:
        window, growth = max(64, 2 * k, r + 2), 2.0
    cleared = 0
    while True:
        capped_here = window >= min(affordable, n_limit) and affordable < n_limit
        window = min(window, affordable, n_limit)
        if window - r <= cleared and cleared > 0:
            return None, cleared, True
        try:
            span = minimal_codeword_span(
                g, window, k, mem_elems=mem_elems, stream_elems=stream_elems
            )
        except EnvelopeError:
            return None, cleared, True
        if span is not None:
            n = span - r
            if n <= n_max:
                return n, n - 1, False
            return None, n_max, False
        cleared = max(window - r, 0)
        if window >= n_limit:
            return None, min(cleared, n_max), False
        if capped_here:
            return None, cleared, True
        window = int(window * growth) + 1


class TestFirstFailureIdentity:
    @given(
        odd_polys(max_degree=14),
        st.integers(min_value=3, max_value=6),
        st.sampled_from([100, 400, 1500]),
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_collect_all_reference(self, g, k, n_max):
        ref = reference_first_failure(
            g, k, n_max=n_max,
            mem_elems=10**6, stream_elems=10**8,
        )
        out = first_failure_jump(
            g, k, n_max=n_max,
            mem_elems=10**6, stream_elems=10**8,
        )
        assert out == ref

    @given(
        odd_polys(max_degree=14),
        st.integers(min_value=5, max_value=9),
        st.sampled_from([2000, 20000]),
        st.sampled_from([2000, 50_000]),
    )
    @settings(max_examples=20, deadline=None)
    def test_matches_reference_when_capped(self, g, k, n_max, mem):
        ref = reference_first_failure(
            g, k, n_max=n_max, mem_elems=mem, stream_elems=200_000
        )
        out = first_failure_jump(
            g, k, n_max=n_max, mem_elems=mem, stream_elems=200_000
        )
        assert out == ref

    def test_crc32_doctest_values_hold(self):
        from repro.gf2.notation import koopman_to_full

        g = koopman_to_full(0x82608EDB)
        assert first_failure_length(g, 4, n_max=4000) == 2975
        assert max_length_for_hd(g, 5, n_max=4000) == 2974

    def test_shared_cache_changes_nothing(self):
        g = 0b10110111001
        cache = SpanCache(g)
        for k in (3, 4, 5):
            alone = first_failure_detailed(g, k, n_max=500)
            shared = first_failure_detailed(g, k, n_max=500, cache=cache)
            assert alone == shared

    def test_k2_is_order_based(self):
        g = 0b101011  # (x+1)(x^4+x^3+1): order 15
        r = degree(g)
        out = first_failure_detailed(g, 2, n_max=100)
        assert out == FirstFailure(order_of_x(g) + 1 - r, 100)
        with pytest.raises(ValueError):
            first_failure_jump(g, 2, n_max=100)


class TestRefineSpan:
    @given(odd_polys(min_degree=4, max_degree=12))
    @settings(max_examples=30, deadline=None)
    def test_refined_span_is_minimal(self, g):
        # Find any weight-3 window hit, then check refine_span against
        # the collect-all answer at the same window.
        if divisible_by_x_plus_1(g):
            return
        k, window = 3, 300
        syn = syndrome_table(g, window)
        span = minimal_codeword_span(g, window, k, syn=syn)
        if span is None:
            return
        refined = refine_span(g, k, window, k - 1, syn)
        assert refined == span


class TestIncreasingLengthFilter:
    def test_matches_per_length_refutation(self):
        # The table-threading rewrite must keep survivors and stage
        # counts identical to independent per-length refutations.
        from repro.hd.breakpoints import refute_hd_at

        candidates = [(1 << 8) | (i << 1) | 1 for i in range(0, 128, 5)]
        lengths = [16, 40, 90]
        survivors, stages = increasing_length_filter(candidates, lengths, 4)
        expect = list(candidates)
        expect_stages = []
        for n in lengths:
            expect = [
                g for g in expect if refute_hd_at(g, 4, n) is None
            ]
            expect_stages.append((n, len(expect)))
            if not expect:
                break
        assert survivors == expect
        assert stages == expect_stages
