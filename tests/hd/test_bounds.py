"""Tests for the theoretical HD bounds (Hamming / Singleton)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hd.bounds import (
    bound_vs_achieved,
    hamming_bound_ok,
    max_length_for_theoretical_hd,
    max_theoretical_hd,
    singleton_bound_ok,
)


class TestPaperStatements:
    def test_abstract_hd6_maximum_at_mtu(self):
        # "whereas HD=6 is possible" + nothing better: the abstract's
        # "theoretical maximum" is the Hamming bound at 12112 bits
        assert max_theoretical_hd(32, 12112) == 6
        assert not hamming_bound_ok(32, 12112, 7)

    def test_achieved_hd_never_exceeds_bound(self):
        # every Table 1 claim obeys the bound at its band end
        from repro.crc.catalog import PAPER_POLYS

        for key, pp in PAPER_POLYS.items():
            for hd, last_len in pp.hd_breaks.items():
                assert max_theoretical_hd(32, last_len) >= hd, (key, hd)

    def test_search_limits_sit_below_bound(self):
        # the exhaustive search's global limits (HD=6 to 32,738;
        # HD=5 to 65,506) are far below the sphere-packing ceiling --
        # the bound is not tight for cyclic codes here
        rows = dict(
            (hd, (bound, found)) for hd, bound, found in bound_vs_achieved()
        )
        assert rows[6][0] > rows[6][1]
        assert rows[5][0] > rows[5][1]
        # ...but HD=3 is tight: a primitive polynomial is a shortened
        # Hamming code, perfect at its natural length
        assert rows[3][0] == rows[3][1] == 2**32 - 33


class TestBoundMechanics:
    def test_singleton(self):
        assert singleton_bound_ok(32, 33)
        assert not singleton_bound_ok(32, 34)

    def test_d1_always_ok(self):
        assert hamming_bound_ok(8, 10**6, 1)

    def test_invalid_distance(self):
        with pytest.raises(ValueError):
            hamming_bound_ok(8, 10, 0)

    def test_hamming_code_is_tight(self):
        # r=3 Hamming code: d=3 at exactly n=4 data bits (length 7)
        assert max_length_for_theoretical_hd(3, 3) == 4
        assert hamming_bound_ok(3, 4, 3)
        assert not hamming_bound_ok(3, 5, 3)

    @given(st.integers(min_value=3, max_value=16),
           st.integers(min_value=1, max_value=2000),
           st.integers(min_value=2, max_value=9))
    @settings(max_examples=150)
    def test_monotone_in_length(self, r, n, d):
        # allowing a longer word never makes a distance feasible again
        if not hamming_bound_ok(r, n, d):
            assert not hamming_bound_ok(r, n + 1, d)

    @given(st.integers(min_value=3, max_value=16),
           st.integers(min_value=1, max_value=2000))
    @settings(max_examples=100)
    def test_max_hd_consistent_with_ok(self, r, n):
        d = max_theoretical_hd(r, n)
        assert hamming_bound_ok(r, n, d)
        if d < r + 1:
            assert not (hamming_bound_ok(r, n, d + 1)
                        and singleton_bound_ok(r, d + 1))

    def test_binary_search_limit(self):
        for d in (3, 4, 5, 6):
            limit = max_length_for_theoretical_hd(32, d)
            assert hamming_bound_ok(32, limit, d)
            assert not hamming_bound_ok(32, limit + 1, d)


class TestAgainstMeasuredHd:
    def test_crc8_measured_vs_bound(self):
        from repro.hd.hamming import hamming_distance

        for n in (10, 30, 60, 100):
            measured = hamming_distance(0x107, n, k_max=10)
            assert measured <= max_theoretical_hd(8, n)
