"""Validation against externally-known CRC facts.

These expected values come from the standards and the broader CRC
literature (not from the paper), giving the engines ground truth that
is independent of this reproduction -- the same role the published
8/16-bit search results played for the paper's §4.5 validation.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf2.factorize import factor_degrees
from repro.gf2.order import hd2_data_word_limit, order_of_x
from repro.gf2.poly import reciprocal
from repro.hd.breakpoints import first_failure_length
from repro.hd.hamming import hamming_distance
from repro.hd.weights import brute_force_weights, weight_profile


class TestCrc16Standards:
    def test_ccitt_structure(self):
        # x^16+x^12+x^5+1 = (x+1)(x^15+x^14+x^13+x^12+x^4+x^3+x^2+x+1)
        g = 0x11021
        assert factor_degrees(g) == [1, 15]
        # the degree-15 factor is primitive: order 32767, so the
        # classic "detects all double-bit errors to 32751 bits" fact
        assert order_of_x(g) == 32767
        assert hd2_data_word_limit(g) == 32751

    def test_ccitt_hd4_at_moderate_lengths(self):
        g = 0x11021
        for n in (64, 1000, 4000):
            assert hamming_distance(g, n) == 4

    def test_ibm_structure(self):
        # x^16+x^15+x^2+1 = (x+1)(x^15+x+1), primitive degree-15 factor
        g = 0x18005
        assert factor_degrees(g) == [1, 15]
        assert order_of_x(g) == 32767
        assert hd2_data_word_limit(g) == 32751

    def test_ibm_hd4_short(self):
        assert hamming_distance(0x18005, 100) == 4

    def test_ccitt_parity(self):
        # (x+1)-divisible: all odd weights zero, verified by counting
        w = weight_profile(0x11021, 200, 4)
        assert w[3] == 0
        assert w[4] > 0  # HD is exactly 4 here


class TestCrc8Standards:
    def test_atm_hec_exact_range(self):
        # x^8+x^2+x+1: HD=4 through 119 bits, order 127
        g = 0x107
        assert order_of_x(g) == 127
        assert first_failure_length(g, 2, n_max=200) == 120
        assert hamming_distance(g, 119) == 4
        assert hamming_distance(g, 120) == 2

    def test_maxim_structure(self):
        # x^8+x^5+x^4+1 = (x+1)(x^7+x^6+x^5+x^3+x^2+x+1): an even term
        # count, so 1-Wire's CRC carries the implicit parity bit
        g = 0x131
        assert factor_degrees(g) == [1, 7]
        from repro.gf2.poly import divisible_by_x_plus_1

        assert divisible_by_x_plus_1(g)
        # parity in action: W3 is zero wherever we look
        assert weight_profile(g, 60, 3)[3] == 0

    def test_crc5_usb(self):
        # x^5+x^2+1 is primitive: order 31
        g = 0b100101
        assert order_of_x(g) == 31


class TestPetersonReciprocalTheorem:
    """Reciprocal polynomials have identical weight distributions --
    the theorem behind the paper's search-space halving, verified
    empirically on the actual counters."""

    @given(st.integers(min_value=0b100001, max_value=(1 << 11) - 1)
           .filter(lambda p: p & 1))
    @settings(max_examples=60, deadline=None)
    def test_weight_distributions_match(self, g):
        r = reciprocal(g)
        n = 14
        # brute force both; reciprocal of an odd-constant poly keeps
        # its degree, so window sizes agree
        assert brute_force_weights(g, n, 5) == brute_force_weights(r, n, 5)

    @given(st.integers(min_value=0b1000001, max_value=(1 << 13) - 1)
           .filter(lambda p: p & 1))
    @settings(max_examples=40, deadline=None)
    def test_hd_matches(self, g):
        r = reciprocal(g)
        for n in (10, 40):
            try:
                hd_g = hamming_distance(g, n, k_max=10)
                hd_r = hamming_distance(r, n, k_max=10)
            except ValueError:
                continue
            assert hd_g == hd_r

    def test_orders_match(self):
        g = 0x104C11DB7
        assert order_of_x(g) == order_of_x(reciprocal(g))
