"""Tests for constructive factorization-class generation."""

from __future__ import annotations

import pytest

from repro.gf2.factorize import factor_degrees
from repro.gf2.poly import degree, divisible_by_x_plus_1
from repro.search.classes import (
    class_members,
    class_size,
    degree_of_class,
    paper_class_shapes,
    random_irreducible,
    sample_class_members,
)


class TestClassSize:
    def test_paper_1_3_28(self):
        # (x+1) fixed, 2 degree-3 choices, 9,586,395 degree-28 choices
        assert class_size((1, 3, 28)) == 2 * 9_586_395

    def test_repeated_degrees_multiset(self):
        # {1,1}: only (x+1)^2 -- one polynomial
        assert class_size((1, 1)) == 1
        # {2,2}: only (x^2+x+1)^2
        assert class_size((2, 2)) == 1
        # {3,3}: two irreducibles with repetition: C(3,2) = 3
        assert class_size((3, 3)) == 3

    def test_1_1_15_15(self):
        from math import comb

        n15 = 2182  # count_irreducibles(15)
        assert class_size((1, 1, 15, 15)) == comb(n15 + 1, 2)


class TestEnumeration:
    def test_members_have_right_class(self):
        for p in class_members((1, 4)):
            assert factor_degrees(p) == [1, 4]
            assert degree(p) == 5
            assert divisible_by_x_plus_1(p)

    def test_member_count_matches_size(self):
        listed = list(class_members((1, 4)))
        assert len(listed) == class_size((1, 4)) == 3
        assert len(set(listed)) == 3

    def test_repeated_factor_enumeration(self):
        listed = list(class_members((3, 3)))
        assert len(listed) == 3
        for p in listed:
            assert factor_degrees(p) == [3, 3]

    def test_limit(self):
        assert len(list(class_members((1, 6), limit=4))) == 4

    def test_large_degree_rejected(self):
        with pytest.raises(ValueError):
            list(class_members((1, 28)))


class TestSampling:
    def test_sampled_members_classified(self):
        import random

        polys = sample_class_members((1, 3, 28), 4, seed=7)
        assert len(set(polys)) == 4
        for p in polys:
            assert factor_degrees(p) == [1, 3, 28]
            assert degree(p) == 32

    def test_deterministic(self):
        assert sample_class_members((1, 5), 3, seed=1) == sample_class_members(
            (1, 5), 3, seed=1
        )

    def test_random_irreducible_degree_1(self):
        import random

        assert random_irreducible(1, random.Random(0)) == 0b11


class TestShapes:
    def test_paper_shapes_sum_to_32(self):
        for sig in paper_class_shapes(32):
            assert degree_of_class(sig) == 32

    def test_scaled_shapes(self):
        for sig in paper_class_shapes(12):
            assert degree_of_class(sig) == 12
