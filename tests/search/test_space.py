"""Candidate-space enumeration and reciprocal deduplication tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf2.poly import is_palindrome, reciprocal
from repro.search.space import (
    candidate_count,
    candidate_polys,
    canonical,
    canonical_candidates,
    index_to_poly,
    is_canonical,
    poly_to_index,
)


class TestIndexing:
    @given(st.integers(min_value=0, max_value=(1 << 15) - 1))
    def test_roundtrip(self, idx):
        assert poly_to_index(index_to_poly(idx, 16), 16) == idx

    def test_8023_index(self):
        # interior bits of the full encoding (koopman repr minus the
        # fixed x^32 top bit) form the dense index
        assert index_to_poly(0x82608EDB & 0x7FFFFFFF, 32) == 0x104C11DB7

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            index_to_poly(1 << 31, 32)
        with pytest.raises(ValueError):
            poly_to_index(0x104C11DB6, 32)  # missing +1 term

    def test_enumeration_shape(self):
        polys = list(candidate_polys(6))
        assert len(polys) == 32
        assert all(p >> 6 == 1 and p & 1 for p in polys)
        assert len(set(polys)) == 32


class TestCanonicalization:
    @given(st.integers(min_value=0, max_value=(1 << 15) - 1))
    @settings(max_examples=200)
    def test_canonical_is_min_of_pair(self, idx):
        p = index_to_poly(idx, 16)
        c = canonical(p)
        assert c in (p, reciprocal(p))
        assert c <= p and c <= reciprocal(p)

    @given(st.integers(min_value=0, max_value=(1 << 15) - 1))
    def test_exactly_one_of_pair_is_canonical(self, idx):
        p = index_to_poly(idx, 16)
        r = reciprocal(p)
        if p == r:
            assert is_canonical(p)
        else:
            assert is_canonical(p) != is_canonical(r)

    def test_reciprocal_stays_in_space(self):
        # reciprocal of a width-w candidate is a width-w candidate
        for p in candidate_polys(8):
            r = reciprocal(p)
            assert r >> 8 == 1 and r & 1


class TestCounts:
    @pytest.mark.parametrize("width", [3, 4, 5, 6, 8, 10])
    def test_census_matches_enumeration(self, width):
        canonicals = list(canonical_candidates(width))
        expected = candidate_count(width)
        assert len(canonicals) == expected["canonical"]
        palindromes = [p for p in candidate_polys(width) if is_palindrome(p)]
        assert len(palindromes) == expected["palindromes"]

    def test_paper_32bit_count(self):
        # "The entire set of 1,073,774,592 distinct polynomials"
        assert candidate_count(32)["canonical"] == 1_073_774_592

    def test_partition_covers_space(self):
        # chunked canonical enumeration == full canonical enumeration
        full = list(canonical_candidates(8))
        chunked = []
        for lo in range(0, 128, 13):
            chunked.extend(canonical_candidates(8, lo, min(lo + 13, 128)))
        assert chunked == full
