"""Differential tests: the batched screening backend against the
scalar oracle.

The batched backend's contract is *record-for-record identity* with
the scalar path -- same survivors, same per-stage kill counts, same
kill weights and witnesses -- asserted here on full canonical spaces
at validation widths and on random batches via hypothesis.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hd.batched import (
    BatchKeys,
    extend_syndrome_tables,
    syndrome_tables_batched,
)
from repro.hd.syndromes import syndrome_of_positions, syndrome_table
from repro.search.exhaustive import (
    SearchConfig,
    campaign_from_results,
    search_chunk,
)

gen_polys = st.integers(min_value=0b101, max_value=(1 << 17) - 1).filter(
    lambda p: p & 1 and p.bit_length() >= 2
)


@st.composite
def same_degree_batches(draw, max_width=16, max_size=8):
    """Batches sharing one degree, as the kernels require: the x**w and
    +1 terms are fixed, the interior bits drawn freely."""
    w = draw(st.integers(min_value=2, max_value=max_width))
    interiors = draw(
        st.lists(
            st.integers(min_value=0, max_value=(1 << (w - 1)) - 1),
            min_size=1,
            max_size=max_size,
        )
    )
    return [(1 << w) | (i << 1) | 1 for i in interiors]


def both_backends(config: SearchConfig) -> tuple:
    """Run the same full space through both backends."""
    end = 1 << (config.width - 1)
    batched = search_chunk(replace(config, backend="batched"), 0, end)
    scalar = search_chunk(replace(config, backend="scalar"), 0, end)
    return batched, scalar


def assert_identical(batched, scalar) -> None:
    assert batched.examined == scalar.examined
    assert batched.stage_kills == scalar.stage_kills
    assert len(batched.records) == len(scalar.records)
    for b, s in zip(batched.records, scalar.records):
        assert b == s, f"record mismatch for {b.poly:#x}:\n  {b}\n  {s}"


class TestFullSpaceIdentity:
    @pytest.mark.parametrize("width", [8, 9, 10, 11, 12])
    def test_hd4_screening_identical(self, width):
        cfg = SearchConfig.for_bits(width, 4, 120)
        assert_identical(*both_backends(cfg))

    @pytest.mark.parametrize("target_hd", [5, 6])
    def test_deep_cascade_identical(self, target_hd):
        # HD >= 5 exercises the weight-4 pair screen; HD >= 6 adds the
        # weight-5 (2,3)-split screen and parity immunity on odd k.
        cfg = SearchConfig(
            width=9, target_hd=target_hd, filter_lengths=(12, 24, 48),
            confirm_weights=False,
        )
        assert_identical(*both_backends(cfg))

    def test_scalar_tail_identical(self):
        # HD >= 7 pushes weight 6 through the per-row scalar tail.
        cfg = SearchConfig(
            width=10, target_hd=7, filter_lengths=(8, 16),
            confirm_weights=False,
        )
        assert_identical(*both_backends(cfg))

    def test_tiny_batches_identical(self):
        # Batch boundaries must not change anything: force many blocks.
        cfg = SearchConfig.for_bits(10, 4, 100, batch_size=7)
        assert_identical(*both_backends(cfg))

    def test_merged_campaigns_identical(self):
        cfg = SearchConfig.for_bits(9, 4, 100)
        chunks = {}
        for i, lo in enumerate(range(0, 256, 50)):
            chunks[i] = search_chunk(cfg, lo, min(lo + 50, 256))
        merged = campaign_from_results(cfg, chunks)
        scalar = campaign_from_results(
            replace(cfg, backend="scalar"),
            {
                i: search_chunk(
                    replace(cfg, backend="scalar"),
                    lo,
                    min(lo + 50, 256),
                )
                for i, lo in enumerate(range(0, 256, 50))
            },
        )
        assert merged.candidates_examined == scalar.candidates_examined
        assert {r.poly for r in merged.survivors} == {
            r.poly for r in scalar.survivors
        }
        assert merged.results == scalar.results


class TestKernelProperties:
    @given(
        same_degree_batches(),
        st.integers(min_value=1, max_value=120),
    )
    @settings(max_examples=60, deadline=None)
    def test_tables_match_scalar(self, gs, n):
        tables = syndrome_tables_batched(gs, n)
        assert tables.shape == (len(gs), n)
        for row, g in zip(tables, gs):
            np.testing.assert_array_equal(row, syndrome_table(g, n))

    @given(
        same_degree_batches(max_size=6),
        st.integers(min_value=1, max_value=60),
        st.integers(min_value=1, max_value=60),
    )
    @settings(max_examples=60, deadline=None)
    def test_extend_matches_fresh_build(self, gs, n1, n2):
        tables = syndrome_tables_batched(gs, n1)
        extended = extend_syndrome_tables(
            np.asarray(gs, dtype=np.uint64), tables, n2
        )
        np.testing.assert_array_equal(
            extended, syndrome_tables_batched(gs, n2)
        )

    @given(
        gen_polys,
        st.sets(st.integers(min_value=0, max_value=80), min_size=1, max_size=5),
    )
    @settings(max_examples=100, deadline=None)
    def test_rows_agree_with_position_syndromes(self, g, positions):
        # Each table row XOR-composes exactly like syndrome_of_positions.
        n = max(positions) + 1
        tables = syndrome_tables_batched([g], n)
        acc = np.uint64(0)
        for p in positions:
            acc ^= tables[0, p]
        assert int(acc) == syndrome_of_positions(g, sorted(positions))

    @given(same_degree_batches())
    @settings(max_examples=60, deadline=None)
    def test_weight2_screen_is_order_check(self, gs):
        # A duplicate syndrome within the window <=> order(x) <= N-1,
        # the scalar cascade's first kill.
        from repro.gf2.order import order_of_x

        width = gs[0].bit_length() - 1
        n = 48
        tables = syndrome_tables_batched(gs, n)
        keys = BatchKeys(tables, width)
        dup = keys.duplicate_rows()
        for flag, g in zip(dup, gs):
            assert bool(flag) == (order_of_x(g) <= n - 1)
