"""Class census (Table 2 machinery) tests."""

from __future__ import annotations

import pytest

from repro.gf2.notation import koopman_to_full
from repro.gf2.poly import gf2_mul
from repro.search.census import ClassCensus, census_of, fewest_taps, koopman_summary
from repro.search.exhaustive import SearchConfig, search_all


class TestCensusBasics:
    def test_single_poly(self):
        c = census_of([0b101011])  # (x+1)(x^4+x^3+1)
        assert c.counts == {(1, 4): 1}
        assert c.total == 1

    def test_mixed_classes(self):
        c = census_of([0b101011, 0b101111, gf2_mul(0b111, 0b111)])
        assert c.total == 3
        assert sum(c.counts.values()) == 3

    def test_x_plus_1_law_detection(self):
        good = census_of([0b101011])        # divisible
        assert good.all_divisible_by_x_plus_1()
        bad = census_of([0b1011])           # x^3+x+1, not divisible
        assert not bad.all_divisible_by_x_plus_1()
        assert bad.violators_of_x_plus_1() == [0b1011]

    def test_sorted_rows_order(self):
        c = ClassCensus()
        for p in [0b101011, 0b1011, gf2_mul(0b11, gf2_mul(0b11, 0b111))]:
            c.add(p)
        rows = c.sorted_rows()
        # fewer factors first, then lexicographic signature
        assert [len(sig) for sig, _ in rows] == sorted(len(sig) for sig, _ in rows)


class TestFewestTaps:
    def test_paper_sparse_selection(self):
        polys = [
            koopman_to_full(0x90022004),
            koopman_to_full(0x992C1A4C),
        ]
        assert fewest_taps(polys) == [koopman_to_full(0x90022004)]

    def test_tie_break_deterministic(self):
        a, b = 0b10011, 0b11001  # both 3 terms
        assert fewest_taps([b, a], 2) == [a, b]


class TestCensusOfRealSearch:
    def test_crc8_census(self):
        cfg = SearchConfig(
            width=8, target_hd=4, filter_lengths=(16, 100), confirm_weights=False
        )
        res = search_all(cfg)
        census = census_of(res.survivors)
        assert census.total == len(res.survivors)
        # every surviving class contains the degree-1 factor (the
        # scaled (x+1) law)
        for sig in census.counts:
            assert 1 in sig
        lines = koopman_summary(census)
        assert len(lines) == len(census.counts)
        assert all("polynomials" in line for line in lines)
