"""Result record serialization and idempotent merging."""

from __future__ import annotations

import pytest

from repro.search.records import CampaignRecord, PolyRecord, describe_poly


def make_record(poly=0x107, survived=True):
    return PolyRecord(
        poly=poly,
        width=8,
        data_word_bits=100,
        hd=4,
        survived=survived,
        filtered_at_bits=None if survived else 16,
        witness=None if survived else (0, 1, 5),
        weights={2: 0, 3: 0, 4: 42872} if survived else None,
    )


class TestPolyRecord:
    def test_json_roundtrip_survivor(self):
        rec = make_record()
        assert PolyRecord.from_json_dict(rec.to_json_dict()) == rec

    def test_json_roundtrip_filtered(self):
        rec = make_record(survived=False)
        assert PolyRecord.from_json_dict(rec.to_json_dict()) == rec

    def test_derived_properties(self):
        rec = make_record()
        assert rec.koopman == 0x83
        assert rec.factor_class == (1, 7)

    def test_describe(self):
        s = describe_poly(0x107)
        assert "0x107" in s and "{1,7}" in s and "degree 8" in s


class TestCampaignRecord:
    def test_merge_is_idempotent(self):
        c = CampaignRecord(width=8, data_word_bits=100, target_hd=4)
        recs = [make_record()]
        assert c.merge_chunk(0, recs, 10)
        assert not c.merge_chunk(0, recs, 10)  # replay ignored
        assert c.candidates_examined == 10
        assert len(c.results) == 1

    def test_survivors_sorted(self):
        c = CampaignRecord(width=8, data_word_bits=100, target_hd=4)
        c.merge_chunk(0, [make_record(0x1F5), make_record(0x107)], 2)
        assert [r.poly for r in c.survivors] == [0x107, 0x1F5]

    def test_json_roundtrip(self):
        c = CampaignRecord(width=8, data_word_bits=100, target_hd=4)
        c.merge_chunk(3, [make_record(), make_record(0x11D, survived=False)], 7)
        c2 = CampaignRecord.from_json(c.to_json())
        assert c2.width == 8
        assert c2.chunks_done == {3}
        assert c2.candidates_examined == 7
        assert c2.results == c.results
