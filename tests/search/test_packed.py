"""Differential tests: the packed (bit-plane / composite-key) backend
against the batched backend and the scalar oracle.

Same contract as ``test_batched.py`` one level up the stack: the
packed backend must be *record-for-record identical* -- survivors,
per-stage kill counts, kill weights, witnesses -- on full canonical
spaces and on hypothesis-drawn widths, target HDs, and chunkings.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hd.packed import (
    PlaneState,
    composite_tables,
    syndrome_tables_packed,
    weight3_rows_packed,
)
from repro.hd.syndromes import syndrome_table
from repro.gf2.order import order_of_x
from repro.search.exhaustive import (
    SearchConfig,
    effective_kernel,
    search_chunk,
)


def run_backend(config: SearchConfig, backend: str, start=0, end=None):
    if end is None:
        end = 1 << (config.width - 1)
    return search_chunk(replace(config, backend=backend), start, end)


def assert_identical(a, b) -> None:
    assert a.examined == b.examined
    assert a.stage_kills == b.stage_kills
    assert len(a.records) == len(b.records)
    for ra, rb in zip(a.records, b.records):
        assert ra == rb, f"record mismatch for {ra.poly:#x}:\n  {ra}\n  {rb}"


class TestFullSpaceIdentity:
    @pytest.mark.parametrize("width", [8, 10, 12])
    def test_hd4_screening_identical(self, width):
        cfg = SearchConfig.for_bits(width, 4, 120)
        assert_identical(
            run_backend(cfg, "packed"), run_backend(cfg, "scalar")
        )

    @pytest.mark.parametrize("target_hd", [5, 6])
    def test_deep_cascade_identical(self, target_hd):
        # HD >= 5 routes the packed backend through the batched
        # weight-4/5 machinery on materialized uint64 tables; HD >= 6
        # adds parity immunity on odd weights.
        cfg = SearchConfig(
            width=9, target_hd=target_hd, filter_lengths=(12, 24, 48),
            confirm_weights=False,
        )
        assert_identical(
            run_backend(cfg, "packed"), run_backend(cfg, "batched")
        )

    def test_scalar_tail_identical(self):
        cfg = SearchConfig(
            width=10, target_hd=7, filter_lengths=(8, 16),
            confirm_weights=False,
        )
        assert_identical(
            run_backend(cfg, "packed"), run_backend(cfg, "scalar")
        )

    def test_tiny_batches_identical(self):
        # Lane compaction and batch boundaries must not change records.
        cfg = SearchConfig.for_bits(10, 4, 100, batch_size=7)
        assert_identical(
            run_backend(cfg, "packed"), run_backend(cfg, "batched")
        )

    def test_width_above_packed_cap_falls_back(self):
        # backend="packed" beyond PACKED_MAX_WIDTH must dispatch to the
        # batched path rather than fail.
        cfg = SearchConfig.for_bits(33, 4, 80)
        assert effective_kernel(replace(cfg, backend="packed")) == "batched"


@st.composite
def packed_configs(draw):
    """Random (config, chunk bounds): widths 5-16, hd 4-6, chunkings."""
    width = draw(st.integers(min_value=5, max_value=16))
    target_hd = draw(st.integers(min_value=4, max_value=6))
    bits = draw(st.integers(min_value=40, max_value=200))
    batch_size = draw(st.sampled_from([3, 17, 64, 4096]))
    space = 1 << (width - 1)
    start = draw(st.integers(min_value=0, max_value=max(space - 2, 0)))
    end = draw(st.integers(min_value=start + 1, max_value=space))
    cfg = SearchConfig.for_bits(
        width, target_hd, bits, batch_size=batch_size
    )
    return cfg, start, end


class TestHypothesisDifferential:
    @given(packed_configs())
    @settings(max_examples=25, deadline=None)
    def test_three_backends_agree(self, case):
        cfg, start, end = case
        packed = run_backend(cfg, "packed", start, end)
        batched = run_backend(cfg, "batched", start, end)
        assert_identical(packed, batched)
        if end - start <= 64:  # scalar is slow; spot-check small chunks
            assert_identical(packed, run_backend(cfg, "scalar", start, end))


@st.composite
def same_degree_batches(draw, max_width=16, max_size=8):
    w = draw(st.integers(min_value=2, max_value=max_width))
    interiors = draw(
        st.lists(
            st.integers(min_value=0, max_value=(1 << (w - 1)) - 1),
            min_size=1,
            max_size=max_size,
        )
    )
    return [(1 << w) | (i << 1) | 1 for i in interiors]


class TestPackedKernels:
    @given(same_degree_batches(), st.integers(min_value=1, max_value=120))
    @settings(max_examples=60, deadline=None)
    def test_packed_tables_match_scalar(self, gs, n):
        tables = syndrome_tables_packed(
            np.array(gs, dtype=np.uint64), n
        )
        assert tables.shape == (len(gs), n)
        for row, g in zip(tables, gs):
            np.testing.assert_array_equal(row, syndrome_table(g, n))

    @given(same_degree_batches(max_size=70), st.integers(min_value=2, max_value=200))
    @settings(max_examples=40, deadline=None)
    def test_plane_first_one_is_order(self, gs, n):
        # The plane sweep's first "register == 1" position is the order
        # of x -- across word boundaries (batches wider than 64 lanes).
        g_arr = np.array(gs, dtype=np.uint64)
        r = gs[0].bit_length() - 1
        plane = PlaneState(g_arr, r)
        plane.advance_to(n)
        for lane, g in enumerate(gs):
            order = order_of_x(g)
            expect = order if order <= n - 1 else -1
            assert plane.first_one[lane] == expect

    @given(same_degree_batches(max_width=16), st.integers(min_value=4, max_value=300))
    @settings(max_examples=40, deadline=None)
    def test_weight3_rows_match_table_scan(self, gs, n):
        # Composite-key adjacency finds exactly the rows whose syndrome
        # table contains a pair differing by 1 (a weight-3 codeword).
        g_arr = np.array(gs, dtype=np.uint64)
        r = gs[0].bit_length() - 1
        keys, pos_bits = composite_tables(g_arr, r, n)
        keys.sort(axis=1)
        hits = weight3_rows_packed(keys, pos_bits)
        for row, g in zip(hits, gs):
            syn = syndrome_table(g, n)
            vals = set()
            expect = False
            for v in syn.tolist():
                if (v ^ 1) in vals:
                    expect = True
                    break
                vals.add(v)
            assert bool(row) == expect
