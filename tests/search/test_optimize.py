"""Tests for length-customized polynomial optimization."""

from __future__ import annotations

import pytest

from repro.hd.hamming import hamming_distance
from repro.search.optimize import best_for_length, rank_achievers


class TestBestForLength:
    def test_crc8_at_50_bits(self):
        res = best_for_length(8, 50)
        assert res.best_hd == 4
        # every achiever truly achieves it; nothing achieves better
        for p in res.achievers:
            assert hamming_distance(p, 50) >= 4
        assert res.winner in res.achievers

    def test_crc8_at_200_bits_drops(self):
        # beyond every 8-bit polynomial's HD=4 range
        res = best_for_length(8, 200)
        assert res.best_hd < 4

    def test_optimum_is_tight(self):
        # no 8-bit polynomial does better than the reported best
        res = best_for_length(8, 50, hd_ceiling=6)
        from repro.search.space import canonical_candidates

        for p in canonical_candidates(8):
            assert hamming_distance(p, 50, k_max=8) <= res.best_hd

    def test_width_guard(self):
        with pytest.raises(ValueError):
            best_for_length(32, 100)

    def test_small_width_very_short_message(self):
        res = best_for_length(4, 4)
        assert res.best_hd >= 2
        for p in res.achievers:
            assert hamming_distance(p, 4, k_max=10) >= res.best_hd


class TestRanking:
    def test_rank_by_critical_weight_then_taps(self):
        res = best_for_length(8, 80)
        assert res.best_hd == 4
        ranked = res.ranked
        from repro.hd.weights import weight_profile

        w_first = weight_profile(ranked[0], 80, 4)[4]
        w_last = weight_profile(ranked[-1], 80, 4)[4]
        assert w_first <= w_last

    def test_rank_deterministic(self):
        a = rank_achievers([0x107, 0x11D, 0x12F], 40, 4)
        b = rank_achievers([0x12F, 0x107, 0x11D], 40, 4)
        assert a == b
