"""Exhaustive search driver tests at validation widths."""

from __future__ import annotations

import pytest

from repro.gf2.poly import divisible_by_x_plus_1, reciprocal
from repro.hd.hamming import hamming_distance
from repro.search.exhaustive import (
    SearchConfig,
    campaign_from_results,
    expected_examined,
    search_all,
    search_chunk,
)
from repro.search.space import canonical_candidates


@pytest.fixture(scope="module")
def crc8_search():
    cfg = SearchConfig(width=8, target_hd=4, filter_lengths=(16, 40, 100))
    return cfg, search_all(cfg)


class TestConfigValidation:
    def test_rejects_descending_lengths(self):
        with pytest.raises(ValueError):
            SearchConfig(width=8, target_hd=4, filter_lengths=(40, 16))

    def test_rejects_empty_cascade(self):
        with pytest.raises(ValueError):
            SearchConfig(width=8, target_hd=4, filter_lengths=())

    def test_rejects_tiny_width(self):
        with pytest.raises(ValueError):
            SearchConfig(width=2, target_hd=4, filter_lengths=(10,))


class TestCrc8Exhaustive:
    def test_examined_count(self, crc8_search):
        cfg, res = crc8_search
        assert res.examined == expected_examined(8)

    def test_survivors_truly_achieve_target(self, crc8_search):
        cfg, res = crc8_search
        for rec in res.survivors:
            assert hamming_distance(rec.poly, cfg.final_length) >= 4
            assert rec.weights[2] == 0 and rec.weights[3] == 0

    def test_filtered_out_have_witnesses(self, crc8_search):
        from repro.hd.syndromes import is_undetected_pattern

        cfg, res = crc8_search
        for rec in res.records:
            if not rec.survived:
                assert rec.witness is not None
                assert is_undetected_pattern(rec.poly, rec.witness)
                assert len(rec.witness) < 4
                assert max(rec.witness) < rec.filtered_at_bits + 8

    def test_known_good_crc8_survives(self, crc8_search):
        # ATM-HEC x^8+x^2+x+1 has HD=4 to 119 bits: must survive at 100.
        _, res = crc8_search
        survivors = {r.poly for r in res.survivors}
        assert 0x107 in survivors or reciprocal(0x107) in survivors

    def test_all_survivors_divisible_by_x_plus_1(self, crc8_search):
        # The scaled analogue of the paper's §4.2 law holds at width 8
        # for HD=4 at 100 bits.
        _, res = crc8_search
        assert res.survivors  # non-vacuous
        for rec in res.survivors:
            assert divisible_by_x_plus_1(rec.poly)

    def test_stage_kills_accounting(self, crc8_search):
        cfg, res = crc8_search
        assert sum(res.stage_kills.values()) + len(res.survivors) == res.examined
        # the cascade kills most candidates at the cheapest length
        assert res.stage_kills[16] > res.stage_kills[100]


class TestChunkedEquivalence:
    def test_chunks_equal_whole(self):
        cfg = SearchConfig(width=6, target_hd=4, filter_lengths=(10, 24))
        whole = search_all(cfg)
        parts = {}
        for i, lo in enumerate(range(0, 32, 7)):
            parts[i] = search_chunk(cfg, lo, min(lo + 7, 32))
        merged = campaign_from_results(cfg, parts)
        assert merged.candidates_examined == whole.examined
        assert {r.poly for r in merged.survivors} == {
            r.poly for r in whole.survivors
        }

    def test_survivor_hd_is_exact_not_just_threshold(self):
        cfg = SearchConfig(width=6, target_hd=3, filter_lengths=(8, 16))
        res = search_all(cfg)
        for rec in res.survivors:
            assert rec.hd == hamming_distance(rec.poly, 16, exploit_parity=False)
