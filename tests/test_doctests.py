"""Run the library's docstring examples as tests.

Doctests are part of the documentation deliverable; this keeps every
``>>>`` in the public modules honest.  Heavier examples (multi-second
searches) live in modules listed under ``SLOW_MODULES`` and run with
the slow marker.
"""

from __future__ import annotations

import doctest
import importlib

import pytest

FAST_MODULES = [
    "repro.gf2.poly",
    "repro.gf2.irreducible",
    "repro.gf2.intfactor",
    "repro.gf2.order",
    "repro.gf2.factorize",
    "repro.gf2.notation",
    "repro.gf2.ring",
    "repro.crc.spec",
    "repro.crc.codeword",
    "repro.crc.stream",
    "repro.hd.cost",
    "repro.hd.syndromes",
    "repro.hd.mitm",
    "repro.hd.invariants",
    "repro.service.session",
    "repro.search.space",
    "repro.search.census",
    "repro.search.classes",
    "repro.network.stacked",
]

SLOW_MODULES = [
    "repro.hd.hamming",
    "repro.hd.breakpoints",
    "repro.search.optimize",
    "repro.__init__",
]


@pytest.mark.parametrize("module_name", FAST_MODULES)
def test_doctests(module_name):
    module = importlib.import_module(module_name)
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{result.failed} doctest failure(s) in {module_name}"


@pytest.mark.slow
@pytest.mark.parametrize("module_name", SLOW_MODULES)
def test_slow_doctests(module_name):
    module = importlib.import_module(module_name)
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{result.failed} doctest failure(s) in {module_name}"
