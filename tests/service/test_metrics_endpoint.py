"""One port, two protocols: the NDJSON ``metrics`` verb and HTTP scrape.

``serve-crc`` answers a first line starting with ``GET `` or ``HEAD ``
as a one-shot HTTP exchange instead of NDJSON, so a Prometheus
scraper can point at the service's only port.  Both views read the
same registry, which the cross-protocol test pins as the sum-match
invariant: the scrape's ``+Inf`` bucket equals its ``_count`` sample
equals the NDJSON snapshot's histogram ``count`` equals the sum of
its sparse buckets.  Run against a real subprocess server on an
ephemeral loopback port, same harness as the drain tests.
"""

from __future__ import annotations

import json
import os
import re
import socket
import subprocess
import sys

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
CACHE = os.path.join(REPO, "results", "advice_cache.json")


@pytest.fixture()
def server(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve-crc",
         "--cache", CACHE, "--no-compute", "--metrics",
         "--drain-grace", "10"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
    )
    try:
        announce = proc.stdout.readline().strip()
        assert announce.startswith("service.listening "), announce
        port = int(announce.rsplit("port=", 1)[1])
        yield port
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.wait(timeout=30)


def ndjson(port, *requests):
    """Send NDJSON requests on one connection; one response per line."""
    with socket.create_connection(("127.0.0.1", port), timeout=30) as sk:
        f = sk.makefile("rw")
        for request in requests:
            f.write(json.dumps(request) + "\n")
            f.flush()
        return [json.loads(f.readline()) for _ in requests]


def http_get(port, path, method="GET"):
    """A bare HTTP/1.1 exchange; returns (status, headers, body)."""
    with socket.create_connection(("127.0.0.1", port), timeout=30) as sk:
        sk.sendall(
            f"{method} {path} HTTP/1.1\r\nHost: localhost\r\n"
            "Accept: text/plain\r\n\r\n".encode()
        )
        raw = b""
        while chunk := sk.recv(65536):
            raw += chunk
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode().split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        key, _, value = line.partition(":")
        headers[key.strip().lower()] = value.strip()
    return status, headers, body.decode()


def test_metrics_verb_returns_live_snapshot(server):
    port = server
    responses = ndjson(
        server,
        {"op": "ping", "id": 1},
        {"op": "ping", "id": 2},
        {"op": "metrics", "id": 3},
    )
    assert all(r["ok"] for r in responses)
    snap = responses[2]
    assert snap["enabled"] is True
    assert snap["metrics"]["counters"]["service.request.ping"] == 2
    hist = snap["metrics"]["hists"]["service.latency.ping"]
    assert hist["count"] == 2
    assert sum(hist["buckets"].values()) == 2


def test_scrape_sum_matches_ndjson_snapshot(server):
    port = server
    # Generate latency observations across several ops, then snapshot
    # over NDJSON *before* scraping (the scrape itself only increments
    # a counter, never a histogram, so the hist counts must agree).
    responses = ndjson(
        port,
        {"op": "ping", "id": 1},
        {"op": "advise", "length": 1500, "id": 2},
        {"op": "checksum", "poly": "0x82608edb", "data": "00", "id": 3},
        {"op": "metrics", "id": 4},
    )
    snap = responses[3]["metrics"]

    status, headers, body = http_get(port, "/metrics")
    assert status == 200
    assert headers["content-type"].startswith("text/plain; version=0.0.4")
    assert headers["connection"] == "close"
    assert int(headers["content-length"]) == len(body.encode())

    for op in ("ping", "advise", "checksum"):
        name = f"service_latency_{op}"
        assert f"# TYPE {name} histogram" in body
        inf = int(
            re.search(rf'{name}_bucket{{le="\+Inf"}} (\d+)', body).group(1)
        )
        count = int(re.search(rf"{name}_count (\d+)", body).group(1))
        ndjson_hist = snap["hists"][f"service.latency.{op}"]
        assert inf == count == ndjson_hist["count"] == 1
        assert sum(ndjson_hist["buckets"].values()) == 1
    counter = int(
        re.search(r"service_request_ping (\d+)", body).group(1)
    )
    assert counter == snap["counters"]["service.request.ping"] == 1


def test_scrape_is_counted_and_other_paths_404(server):
    port = server
    status, _, _ = http_get(port, "/metrics")
    assert status == 200
    status, _, body = http_get(port, "/anything-else")
    assert status == 404
    assert "only /metrics" in body
    # The scrapes themselves show up in the registry.
    (snap,) = ndjson(port, {"op": "metrics", "id": 1})
    assert snap["metrics"]["counters"]["service.request.scrape"] == 1


def test_head_and_query_string_tolerated(server):
    port = server
    status, headers, _ = http_get(port, "/metrics?format=prometheus")
    assert status == 200
    status, headers, _ = http_get(port, "/metrics", method="HEAD")
    assert status == 200


def test_ndjson_still_works_after_scrapes(server):
    port = server
    http_get(port, "/metrics")
    (pong,) = ndjson(port, {"op": "ping", "id": "after"})
    assert pong["ok"] and pong["id"] == "after"
