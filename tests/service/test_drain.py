"""Graceful drain: SIGTERM with live connections ends in a clean exit.

The servable promise mirrors the campaign pool's: a signal never
tears a request in half.  The server is spawned as a real subprocess
on an ephemeral loopback port, a client connection is held open (one
request still unanswered in the kill test), SIGTERM lands, and the
assertions are on what an operator would see: the in-flight response
still arrives, exit status 0, and an event log that tells the story
(``service.start`` / ``service.drain`` / ``service.stop`` plus the
final ``metrics.snapshot`` carrying the request counters).
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys

import pytest

from repro.obs.events import read_events

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
CACHE = os.path.join(REPO, "results", "advice_cache.json")


@pytest.fixture()
def server(tmp_path):
    events_path = str(tmp_path / "events.jsonl")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve-crc",
         "--cache", CACHE, "--no-compute", "--metrics",
         "--events", events_path, "--drain-grace", "10"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
    )
    try:
        announce = proc.stdout.readline().strip()
        assert announce.startswith("service.listening "), announce
        port = int(announce.rsplit("port=", 1)[1])
        yield proc, port, events_path
    finally:
        if proc.poll() is None:
            proc.kill()
        proc.wait(timeout=30)


def events_by_name(path):
    out = {}
    for record in read_events(path):
        out.setdefault(record["event"], []).append(record)
    return out


def test_sigterm_with_open_connection_drains_cleanly(server):
    proc, port, events_path = server
    with socket.create_connection(("127.0.0.1", port), timeout=30) as sk:
        f = sk.makefile("rw")
        f.write('{"op":"ping","id":1}\n')
        f.flush()
        assert json.loads(f.readline())["ok"]
        # Connection still open when the signal lands.
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=60) == 0

    events = events_by_name(events_path)
    assert events["service.start"][0]["transport"] == "tcp"
    assert events["service.drain"][0]["signal"] == "SIGTERM"
    stop = events["service.stop"][0]
    assert stop["requests"] == 1 and stop["drained"] == "SIGTERM"
    counters = events["metrics.snapshot"][0]["metrics"]["counters"]
    assert counters["service.request.ping"] == 1


def test_sigterm_mid_request_still_answers(server):
    proc, port, events_path = server
    with socket.create_connection(("127.0.0.1", port), timeout=30) as sk:
        f = sk.makefile("rw")
        # Fire the request and the signal back to back: whether the
        # signal lands before or after the handler picks the line up,
        # the drain must let the response out before stopping.
        f.write('{"op":"advise","length":1500,"id":"inflight"}\n')
        f.flush()
        proc.send_signal(signal.SIGTERM)
        response = json.loads(f.readline())
        assert response["ok"] and response["id"] == "inflight"
        assert response["best"] is not None
    assert proc.wait(timeout=60) == 0

    events = events_by_name(events_path)
    assert "service.drain" in events and "service.stop" in events
    counters = events["metrics.snapshot"][0]["metrics"]["counters"]
    assert counters["service.request.advise"] == 1
