"""CrcSession: streaming agrees with one-shot, residue, combine.

The session API is a veneer over the registry kernels, so the tests
here are about the veneer's own obligations: chunking invariance
(any split of the input yields the one-shot CRC), zero-copy input
acceptance (bytes / bytearray / memoryview / non-byte views), residue
constancy over arbitrary frames, and the algebraic contracts of
``fork``/``combine``/``reset``.
"""

from __future__ import annotations

import pytest

from repro.crc.backends import available_backends, crc_compute
from repro.crc.catalog import CATALOG, get_spec
from repro.crc.codeword import append_fcs
from repro.service.session import CrcSession, residue_value

CHECK_INPUT = b"123456789"
PAYLOAD = bytes((i * 199 + 71) & 0xFF for i in range(3000))

BYTE_WIDTH_SPECS = sorted(
    name for name, spec in CATALOG.items() if spec.width % 8 == 0
)
ODD_WIDTH_SPECS = sorted(
    name for name, spec in CATALOG.items() if spec.width % 8
)


@pytest.mark.parametrize("name", sorted(CATALOG))
def test_streaming_matches_one_shot_across_catalog(name):
    spec = CATALOG[name]
    session = CrcSession(spec)
    for lo, hi in [(0, 1), (1, 1), (1, 9), (9, 100), (100, 3000)]:
        session.add(PAYLOAD[lo:hi])
    assert session.value == crc_compute(spec, PAYLOAD[0:1] + PAYLOAD[1:3000])
    assert session.length == 3000


def test_check_vector_and_chaining():
    spec = get_spec("CRC-32/IEEE-802.3")
    assert CrcSession(spec).add(b"123").add(b"456789").value == spec.check


def test_value_read_does_not_disturb_stream():
    spec = get_spec("CRC-32C/Castagnoli")
    session = CrcSession(spec)
    session.add(CHECK_INPUT[:4])
    _ = session.value  # mid-stream peek
    session.add(CHECK_INPUT[4:])
    assert session.value == spec.check


@pytest.mark.parametrize("name", sorted(CATALOG))
def test_every_backend_streams_identically(name):
    spec = CATALOG[name]
    expected = crc_compute(spec, PAYLOAD)
    for backend in available_backends(spec):
        session = CrcSession(spec, backend)
        for i in range(0, len(PAYLOAD), 577):
            session.add(PAYLOAD[i:i + 577])
        assert session.value == expected, backend


def test_zero_copy_input_kinds():
    spec = get_spec("CRC-16/CCITT-FALSE")
    expected = crc_compute(spec, PAYLOAD[:64])
    for view in (
        PAYLOAD[:64],
        bytearray(PAYLOAD[:64]),
        memoryview(PAYLOAD[:64]),
        memoryview(bytearray(PAYLOAD[:64])),
    ):
        assert CrcSession(spec).add(view).value == expected
    # A wider-typed view is reinterpreted as bytes in place.
    import array

    words = array.array("I", [0x04030201, 0x08070605])
    raw = words.tobytes()
    assert (
        CrcSession(spec).add(memoryview(words)).value
        == crc_compute(spec, raw)
    )


@pytest.mark.parametrize("name", BYTE_WIDTH_SPECS)
def test_residue_accepts_valid_frames(name):
    spec = CATALOG[name]
    for message in (b"", b"\xff", CHECK_INPUT, PAYLOAD[:700]):
        session = CrcSession(spec).add(append_fcs(spec, message))
        assert session.check_residue(), name
    # ... and refuses a corrupted one.
    frame = bytearray(append_fcs(spec, CHECK_INPUT))
    frame[3] ^= 0x40
    assert not CrcSession(spec).add(bytes(frame)).check_residue()


def test_residue_is_per_spec_constant():
    spec = get_spec("CRC-32/IEEE-802.3")
    assert residue_value(spec) == residue_value(spec)
    assert residue_value(spec) != residue_value(get_spec("CRC-32C/Castagnoli"))


@pytest.mark.parametrize("name", ODD_WIDTH_SPECS)
def test_residue_refuses_non_byte_widths(name):
    with pytest.raises(ValueError, match="byte-multiple"):
        residue_value(CATALOG[name])


def test_reset_rewinds_to_empty():
    spec = get_spec("CRC-32/IEEE-802.3")
    session = CrcSession(spec).add(PAYLOAD)
    session.reset()
    assert session.length == 0
    assert session.add(CHECK_INPUT).value == spec.check


def test_fork_is_independent():
    spec = get_spec("CRC-32C/Castagnoli")
    base = CrcSession(spec).add(CHECK_INPUT[:5])
    fork = base.fork()
    fork.add(CHECK_INPUT[5:])
    assert fork.value == spec.check
    assert base.length == 5
    assert base.add(CHECK_INPUT[5:]).value == spec.check


@pytest.mark.parametrize("name", sorted(CATALOG))
def test_combine_equals_concatenation(name):
    spec = CATALOG[name]
    a, b = PAYLOAD[:1234], PAYLOAD[1234:]
    sa = CrcSession(spec).add(a)
    sb = CrcSession(spec).add(b)
    joined = sa.combine(sb)
    assert joined.value == crc_compute(spec, a + b)
    assert joined.length == len(PAYLOAD)
    # Operands untouched; the combined session keeps streaming.
    assert sa.length == len(a) and sb.length == len(b)
    assert joined.add(CHECK_INPUT).value == crc_compute(
        spec, PAYLOAD + CHECK_INPUT
    )


def test_combine_rejects_mismatched_specs():
    a = CrcSession(get_spec("CRC-32/IEEE-802.3"))
    b = CrcSession(get_spec("CRC-32C/Castagnoli"))
    with pytest.raises(ValueError, match="cannot combine"):
        a.combine(b)
