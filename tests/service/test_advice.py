"""AdviceStore: warm/hit/miss/persistence, and the no-MITM guarantee.

The store's contract is economic: exact breakpoint math is paid once
(at warm time or first miss) and every later answer is a dictionary
lookup.  The committed repo cache (``results/advice_cache.json``) is
itself under test here -- the acceptance criterion says ``advise``
must answer for every catalog polynomial at lengths 8..2048 without
invoking the MITM search, which the last test proves by replacing
:func:`repro.hd.hamming.hamming_distance` with a tripwire.
"""

from __future__ import annotations

import json
import os

import pytest

import repro.service.advice as advice_mod
from repro.crc.catalog import CATALOG, PAPER_POLYS
from repro.service.advice import AdviceStore, default_polys

G_8023 = PAPER_POLYS["802.3"].full
G_KOOPMAN = PAPER_POLYS["BA0DC66B"].full

REPO_CACHE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "results",
    "advice_cache.json",
)


def small_store(path=None, **kwargs):
    kwargs.setdefault("hd_max", 5)
    kwargs.setdefault("n_max", 96)
    return AdviceStore(path, **kwargs)


def test_warm_computes_once_and_persists(tmp_path):
    path = str(tmp_path / "cache.json")
    store = small_store(path)
    polys = {G_8023: "IEEE 802.3"}
    assert store.warm(polys) == 1
    assert store.warm(polys) == 0  # second warm is a no-op
    assert os.path.exists(path)

    reloaded = small_store(path)
    assert G_8023 in reloaded.entries
    # 802.3 holds HD >= 6 everywhere under 96 bits, so an hd_max=5
    # table can only answer "at least 6" -- served from cache, inexact.
    assert reloaded.hd(G_8023, 57, compute=False) == {
        "hd": 6,
        "exact": False,
        "source": "cache",
    }


def test_hd_cache_hit_is_exact_and_computed_miss_is_persisted(tmp_path):
    path = str(tmp_path / "cache.json")
    store = small_store(path)
    store.warm({G_8023: "IEEE 802.3"})
    # Beyond n_max=96: a point miss, answered by the exact search ...
    first = store.hd(G_8023, 150)
    assert first == {"hd": 7, "exact": True, "source": "computed"}
    # ... persisted, so the reloaded store serves it as a cache hit.
    again = small_store(path)
    assert again.hd(G_8023, 150) == {
        "hd": 7,
        "exact": True,
        "source": "cache",
    }


def test_hd_compute_disabled_raises_on_miss():
    store = small_store()
    store.warm({G_8023: "IEEE 802.3"})
    with pytest.raises(KeyError, match="no cached HD"):
        store.hd(G_8023, 5000, compute=False)


def test_hd_sentinel_band_is_a_lower_bound():
    # At very short lengths the true HD exceeds the warm hd_max; the
    # store must say "at least hd_max+1", flagged inexact, not lie.
    store = small_store()
    store.warm({G_8023: "IEEE 802.3"})
    out = store.hd(G_8023, 9, compute=False)
    assert out == {"hd": 6, "exact": False, "source": "cache"}


def test_hd_rejects_nonpositive_length():
    with pytest.raises(ValueError):
        small_store().hd(G_8023, 0)


def test_advise_ranks_by_hd_then_taps():
    store = small_store()
    store.warm(
        {G_8023: "IEEE 802.3", G_KOOPMAN: "Koopman 0xBA0DC66B"}
    )
    out = store.advise(72)
    assert out["considered"] == 2
    hds = [row["hd"] for row in out["candidates"]]
    assert hds == sorted(hds, reverse=True)
    assert out["best"] == out["candidates"][0]
    # Every row carries provenance and notation fields.
    for row in out["candidates"]:
        assert row["source"] == "cache"
        assert row["koopman"].startswith("0x")


def test_advise_hd_target_filters_and_reports_max_length():
    store = small_store()
    store.warm({G_8023: "IEEE 802.3"})
    out = store.advise(60, hd=5)
    assert out["considered"] == 1
    row = out["candidates"][0]
    assert row["hd"] >= 5
    # 802.3 holds HD>=5 through 268 bits; our table is capped at 96.
    assert row["max_length"] == 96
    # An unattainable target at this length yields no candidates.
    assert store.advise(96, hd=15)["best"] is None


def test_advise_beyond_table_falls_back_to_paper_claims():
    store = small_store()
    store.warm({G_8023: "IEEE 802.3"})
    out = store.advise(10_000)  # far past n_max=96
    row = out["best"]
    assert row["source"] == "paper"
    assert row["hd"] == PAPER_POLYS["802.3"].hd_at(10_000) == 4


def test_advise_width_filter():
    store = AdviceStore(None, hd_max=4, n_max=48)
    store.warm(
        {
            G_8023: "IEEE 802.3",
            CATALOG["CRC-16/CCITT-FALSE"].full_poly: "CRC-16/CCITT-FALSE",
        }
    )
    assert store.advise(32)["considered"] == 1  # default width=32
    assert store.advise(32, width=16)["considered"] == 1
    assert store.advise(32, width=None)["considered"] == 2


def test_load_rejects_foreign_json(tmp_path):
    path = tmp_path / "bogus.json"
    path.write_text(json.dumps({"format": "something-else/9"}))
    with pytest.raises(ValueError, match="not an advice cache"):
        AdviceStore(str(path))


def test_default_polys_covers_paper_and_catalog():
    polys = default_polys()
    for pp in PAPER_POLYS.values():
        assert polys[pp.full]
    for spec in CATALOG.values():
        assert spec.full_poly in polys


class TestCommittedCache:
    """The repo's shipped cache serves the paper's length range cold."""

    @pytest.fixture()
    def store(self, monkeypatch):
        def tripwire(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("MITM search invoked on the hot path")

        monkeypatch.setattr(advice_mod, "hamming_distance", tripwire)
        return AdviceStore(REPO_CACHE, autosave=False)

    def test_every_default_poly_is_warm(self, store):
        for g in default_polys():
            assert g in store.entries, hex(g)
            assert store.entries[g].n_max >= 2048

    def test_advise_8_to_2048_never_searches(self, store):
        for length in (8, 12, 64, 171, 268, 512, 1024, 2047, 2048):
            out = store.advise(length, width=None, limit=50)
            assert out["considered"] == len(store.entries)
            assert all(r["source"] == "cache" for r in out["candidates"])

    def test_exact_cells_match_paper_table1(self, store):
        # Spot-check the cache against published Table 1 bands.
        assert store.hd(G_8023, 268, compute=False)["hd"] == 6
        assert store.hd(G_8023, 269, compute=False)["hd"] == 5
        assert store.hd(G_KOOPMAN, 2048, compute=False) == {
            "hd": 6,
            "exact": True,
            "source": "cache",
        }
