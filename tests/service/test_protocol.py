"""NDJSON protocol: in-process engine contract + stdio round-trip.

Two layers of the same promise.  The :class:`CrcService` tests pin
the request/response shapes, error-code vocabulary, ``id``
passthrough and metrics accounting with no I/O in the way; the
subprocess test then proves the real ``repro serve-crc --stdio``
pipeline delivers exactly one response line per request line --
every op, plus the malformed-JSON and unknown-spec/poly error paths
-- and exits 0 at EOF.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys

import pytest

from repro.crc.catalog import get_spec
from repro.crc.codeword import append_fcs
from repro.obs.metrics import MetricsRegistry
from repro.service.advice import AdviceStore
from repro.service.server import PROTOCOL, CrcService

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
CACHE = os.path.join(REPO, "results", "advice_cache.json")


@pytest.fixture()
def service():
    store = AdviceStore(CACHE, autosave=False)
    return CrcService(store, metrics=MetricsRegistry())


def ask(service, **request):
    return service.handle(request)


class TestOps:
    def test_ping(self, service):
        out = ask(service, op="ping", id=7)
        assert out["ok"] and out["protocol"] == PROTOCOL
        assert out["id"] == 7
        assert set(out["ops"]) == {
            "ping", "checksum", "verify", "advise", "hd", "metrics",
        }

    def test_checksum(self, service):
        out = ask(
            service,
            op="checksum",
            spec="CRC-32/IEEE-802.3",
            data=b"123456789".hex(),
        )
        assert out == {
            "ok": True,
            "op": "checksum",
            "spec": "CRC-32/IEEE-802.3",
            "crc": "0xcbf43926",
            "width": 32,
            "length_bytes": 9,
            "backend": out["backend"],
        }

    def test_verify_residue_mode(self, service):
        spec = get_spec("CRC-32C/Castagnoli")
        frame = append_fcs(spec, b"the payload")
        good = ask(service, op="verify", spec=spec.name, frame=frame.hex())
        assert good["ok"] and good["valid"] and good["mode"] == "residue"
        bad = bytearray(frame)
        bad[0] ^= 1
        assert not ask(
            service, op="verify", spec=spec.name, frame=bytes(bad).hex()
        )["valid"]

    def test_verify_recompute_mode(self, service):
        out = ask(
            service,
            op="verify",
            spec="CRC-32/IEEE-802.3",
            data=b"123456789".hex(),
            crc="0xCBF43926",
        )
        assert out["ok"] and out["valid"] and out["mode"] == "recompute"
        assert not ask(
            service,
            op="verify",
            spec="CRC-32/IEEE-802.3",
            data=b"123456789".hex(),
            crc=1,
        )["valid"]

    def test_advise_from_committed_cache(self, service):
        out = ask(service, op="advise", length=1024, hd=4, limit=3)
        assert out["ok"] and out["best"]["hd"] >= 4
        assert all(r["source"] == "cache" for r in out["candidates"])

    def test_hd_paper_notation(self, service):
        out = ask(service, op="hd", poly="0x82608EDB", length=268)
        assert out["ok"]
        assert out["hd"] == 6 and out["exact"] and out["source"] == "cache"
        assert out["poly"] == "0x104c11db7"

    def test_metrics_accounting(self, service):
        ask(service, op="ping")
        ask(service, op="ping")
        ask(service, op="advise", length=64)
        ask(service, op="nope")
        counters = service.metrics.counters
        assert counters["service.request.ping"] == 2
        assert counters["service.request.advise"] == 1
        assert counters["service.request.error"] == 1
        assert counters["service.error.unknown-op"] == 1
        # Latency is a log2 histogram now, not a scalar timer sum.
        assert service.metrics.hists["service.latency.advise"].count == 1

    def test_metrics_op_matches_registry(self, service):
        ask(service, op="ping")
        out = ask(service, op="metrics")
        assert out["ok"] and out["enabled"]
        snap = out["metrics"]
        assert snap["counters"]["service.request.ping"] == 1
        # The snapshot is taken inside the op's own latency timing, so
        # its own histogram entry exists but precedes the final observe.
        assert "service.latency.ping" in snap["hists"]


class TestErrors:
    def expect(self, service, code, **request):
        out = ask(service, **request)
        assert out["ok"] is False and out["error"]["code"] == code, out
        return out

    def test_error_paths(self, service):
        self.expect(service, "bad-request")
        self.expect(service, "bad-request", op=42)
        self.expect(service, "unknown-op", op="frobnicate")
        self.expect(service, "unknown-spec", op="checksum", spec="CRC-0", data="00")
        self.expect(service, "bad-field", op="checksum", spec="CRC-32/IEEE-802.3",
                    data="zz")
        self.expect(service, "bad-field", op="verify", spec="CRC-32/IEEE-802.3")
        self.expect(service, "bad-field", op="advise", length="long")
        self.expect(service, "bad-field", op="advise", length=0)
        self.expect(service, "bad-poly", op="hd", poly="0x10", length=64)
        self.expect(service, "bad-poly", op="hd", poly=[1], length=64)
        # Residue verify of a non-byte-multiple width is unservable.
        self.expect(service, "bad-field", op="verify", spec="CRC-5/USB",
                    frame="0011")

    def test_non_object_request(self, service):
        assert service.handle([1, 2])["error"]["code"] == "bad-request"

    def test_bad_json_line(self, service):
        out = json.loads(service.handle_line("{nope"))
        assert out["error"]["code"] == "bad-json"

    def test_id_passthrough_on_errors(self, service):
        out = ask(service, op="frobnicate", id="req-9")
        assert out["id"] == "req-9"

    def test_uncached_when_compute_disabled(self):
        service = CrcService(
            AdviceStore(CACHE, autosave=False), compute_on_miss=False
        )
        out = ask(service, op="hd", poly="0x82608EDB", length=500_000)
        assert out["error"]["code"] == "uncached"


class TestStdioTransport:
    def test_full_round_trip(self, tmp_path):
        cache = tmp_path / "cache.json"
        shutil.copy(CACHE, cache)
        frame = append_fcs(get_spec("CRC-32/IEEE-802.3"), b"hello")
        requests = [
            {"op": "ping", "id": 1},
            {"op": "checksum", "spec": "CRC-32/IEEE-802.3",
             "data": b"123456789".hex(), "id": 2},
            {"op": "verify", "spec": "CRC-32/IEEE-802.3",
             "frame": frame.hex(), "id": 3},
            {"op": "advise", "length": 1500, "id": 4},
            {"op": "hd", "poly": "0xBA0DC66B", "length": 1024, "id": 5},
            {"op": "checksum", "spec": "CRC-0", "data": "00", "id": 6},
            {"op": "hd", "poly": "not-a-poly", "length": 8, "id": 7},
        ]
        stdin = "\n".join(json.dumps(r) for r in requests)
        stdin += "\nthis is not json\n"

        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO, "src")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "serve-crc", "--stdio",
             "--cache", str(cache), "--no-compute"],
            input=stdin, capture_output=True, text=True, env=env,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        lines = [json.loads(l) for l in proc.stdout.splitlines() if l.strip()]
        assert len(lines) == len(requests) + 1

        by_id = {l["id"]: l for l in lines if "id" in l}
        assert by_id[1]["ok"] and by_id[1]["protocol"] == PROTOCOL
        assert by_id[2]["crc"] == "0xcbf43926"
        assert by_id[3]["valid"] is True
        assert by_id[4]["best"]["source"] == "cache"
        assert by_id[5] == {"ok": True, "op": "hd", "hd": 6, "exact": True,
                            "source": "cache", "poly": "0x1741b8cd7",
                            "length": 1024, "id": 5}
        assert by_id[6]["error"]["code"] == "unknown-spec"
        assert by_id[7]["error"]["code"] == "bad-poly"
        assert lines[-1]["error"]["code"] == "bad-json"
        # stdout carried protocol lines only; logs went to stderr.
        assert "service.stop" in proc.stderr
