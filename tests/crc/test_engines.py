"""Engine equivalence and check-value tests.

The engines (bit-serial reference plus the generated table and
slice-by-N facades) must agree bit for bit on every spec and input --
property-tested -- and match the published check values for deployed
CRCs (independent ground truth).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crc.catalog import CATALOG
from repro.crc.engine import (
    BitSerialRegister,
    crc_bits,
    crc_bitwise,
    crc_slice4,
    crc_slice8,
    crc_table,
    make_table,
)
from repro.crc.spec import CRCSpec

SPEC_IDS = sorted(CATALOG)


@pytest.mark.parametrize("name", SPEC_IDS)
class TestCheckValues:
    def test_bitwise(self, name):
        spec = CATALOG[name]
        assert crc_bitwise(spec, b"123456789") == spec.check

    def test_table(self, name):
        spec = CATALOG[name]
        assert crc_table(spec, b"123456789") == spec.check

    def test_slice4(self, name):
        spec = CATALOG[name]
        assert crc_slice4(spec, b"123456789") == spec.check

    def test_slice8(self, name):
        spec = CATALOG[name]
        assert crc_slice8(spec, b"123456789") == spec.check


class TestEngineEquivalence:
    @given(st.sampled_from(SPEC_IDS), st.binary(min_size=0, max_size=200))
    @settings(max_examples=200, deadline=None)
    def test_all_engines_agree(self, name, data):
        spec = CATALOG[name]
        ref = crc_bitwise(spec, data)
        assert crc_table(spec, data) == ref
        assert crc_slice4(spec, data) == ref
        assert crc_slice8(spec, data) == ref

    @given(st.binary(min_size=0, max_size=64))
    def test_bits_vs_bytes(self, data):
        # crc_bits over MSB-first bit expansion == crc_bitwise for a
        # non-reflected spec.
        spec = CRCSpec(name="t", width=16, poly=0x1021)
        bits = [(byte >> i) & 1 for byte in data for i in range(7, -1, -1)]
        assert crc_bits(spec, bits) == crc_bitwise(spec, data)


class TestTableConstruction:
    def test_table_entry_zero(self):
        t = make_table(32, 0x04C11DB7, False)
        assert t[0] == 0

    def test_table_is_linear(self):
        # T[a ^ b] == T[a] ^ T[b]: the table is a linear map.
        t = make_table(16, 0x1021, False)
        for a, b in [(1, 2), (3, 5), (0x55, 0xAA), (17, 200)]:
            assert t[a ^ b] == t[a] ^ t[b]

    def test_reflected_table_linear(self):
        t = make_table(32, 0x04C11DB7, True)
        for a, b in [(1, 2), (3, 5), (0x55, 0xAA)]:
            assert t[a ^ b] == t[a] ^ t[b]

    def test_narrow_width_rejected(self):
        # Both orientations: the seed raised only for the normal branch
        # and silently built a width-5 reflected table.
        with pytest.raises(ValueError):
            make_table(5, 0x05, False)
        with pytest.raises(ValueError):
            make_table(5, 0x05, True)


class TestLinearityOfCrc:
    """CRC(a xor b) == CRC(a) xor CRC(b) for bare specs -- the paper's
    §3 linearity argument, verified on the actual engine."""

    @given(st.binary(min_size=8, max_size=64), st.binary(min_size=8, max_size=64))
    @settings(max_examples=100)
    def test_xor_additivity(self, a, b):
        n = min(len(a), len(b))
        a, b = a[:n], b[:n]
        spec = CRCSpec(name="bare", width=32, poly=0x04C11DB7)
        xored = bytes(x ^ y for x, y in zip(a, b))
        assert crc_bitwise(spec, xored) == crc_bitwise(spec, a) ^ crc_bitwise(spec, b)


class TestBitSerialRegister:
    def test_matches_crc_bits(self):
        spec = CRCSpec(name="t", width=8, poly=0x07)
        reg = BitSerialRegister(spec)
        bits = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1]
        reg.shift_bits(bits)
        assert reg.value() == crc_bits(spec, bits)

    def test_reset(self):
        spec = CRCSpec(name="t", width=8, poly=0x07, init=0xAB)
        reg = BitSerialRegister(spec)
        reg.shift_bits([1, 1, 1])
        reg.reset()
        assert reg.register == 0xAB

    def test_tap_counts_paper_sparse_polys(self):
        # The paper's "only five non-zero coefficients" for 0x90022004
        # counts set bits of the implicit-+1 representation; the full
        # polynomial x^32+x^29+x^18+x^14+x^3+1 has six terms, five of
        # them interior feedback taps in a Galois LFSR.
        from repro.gf2.notation import koopman_to_full

        assert (0x90022004).bit_count() == 5
        full_90 = koopman_to_full(0x90022004)
        assert full_90.bit_count() == 6
        full_80 = koopman_to_full(0x80108400)
        assert full_80.bit_count() == 5  # x^32+x^21+x^16+x^11+1
        spec = CRCSpec(name="t", width=32, poly=full_90 & 0xFFFFFFFF)
        assert BitSerialRegister(spec).xor_gate_count == 5
        sparse80 = CRCSpec(name="t", width=32, poly=full_80 & 0xFFFFFFFF)
        assert BitSerialRegister(sparse80).xor_gate_count == 4
        # Far sparser than the deployed 802.3 generator's 14 taps.
        dense = CRCSpec(name="t", width=32, poly=0x04C11DB7)
        assert BitSerialRegister(dense).xor_gate_count == 14

    def test_8023_tap_count(self):
        assert (0x104C11DB7).bit_count() == 15
