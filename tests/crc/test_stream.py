"""Streaming / combine CRC tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crc.catalog import CATALOG
from repro.crc.engine import crc_bitwise
from repro.crc.stream import (
    StreamingCrc,
    advance,
    crc_combine,
    identity,
    mat_mul,
    mat_pow,
    mat_vec,
    shift_operator,
)

SPEC_IDS = sorted(CATALOG)


class TestMatrixAlgebra:
    def test_identity(self):
        ident = identity(4)
        assert mat_vec(ident, 0b1011) == 0b1011

    def test_mat_mul_associative(self):
        a = shift_operator(8, 0x07)
        b = mat_pow(a, 3)
        assert mat_mul(a, mat_mul(a, a)) == b

    def test_pow_zero_is_identity(self):
        a = shift_operator(8, 0x07)
        assert mat_pow(a, 0) == identity(8)

    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=50)
    def test_pow_additivity(self, e):
        a = shift_operator(16, 0x1021)
        assert mat_mul(mat_pow(a, e), mat_pow(a, 7)) == mat_pow(a, e + 7)

    def test_shift_matches_syndrome_evolution(self):
        # advancing the remainder register by k zero bits multiplies
        # the corresponding polynomial by x^k mod G
        from repro.gf2.poly import x_pow_mod

        g = 0x104C11DB7
        op = shift_operator(32, 0x04C11DB7)
        state = 1
        for k in range(1, 64):
            state = mat_vec(op, state)
            assert state == x_pow_mod(k, g)


class TestCombine:
    @given(st.sampled_from(SPEC_IDS), st.binary(max_size=60), st.binary(max_size=60))
    @settings(max_examples=200, deadline=None)
    def test_combine_matches_concatenation(self, name, a, b):
        spec = CATALOG[name]
        combined = crc_combine(
            spec, crc_bitwise(spec, a), crc_bitwise(spec, b), len(b)
        )
        assert combined == crc_bitwise(spec, a + b)

    def test_empty_b(self):
        spec = CATALOG["CRC-32/IEEE-802.3"]
        c = crc_bitwise(spec, b"abc")
        assert crc_combine(spec, c, crc_bitwise(spec, b""), 0) == c

    def test_negative_length(self):
        spec = CATALOG["CRC-32/IEEE-802.3"]
        with pytest.raises(ValueError):
            crc_combine(spec, 0, 0, -1)

    @given(st.sampled_from(SPEC_IDS), st.binary(max_size=30),
           st.binary(max_size=30), st.binary(max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_combine_is_associative(self, name, a, b, c):
        spec = CATALOG[name]
        ca, cb, cc = (crc_bitwise(spec, d) for d in (a, b, c))
        left = crc_combine(spec, crc_combine(spec, ca, cb, len(b)), cc, len(c))
        right = crc_combine(spec, ca, crc_combine(spec, cb, cc, len(c)), len(b) + len(c))
        assert left == right == crc_bitwise(spec, a + b + c)


class TestAdvance:
    @given(st.sampled_from(SPEC_IDS), st.binary(max_size=40),
           st.integers(min_value=0, max_value=16))
    @settings(max_examples=100, deadline=None)
    def test_advance_equals_zero_padding(self, name, data, zeros):
        spec = CATALOG[name]
        padded = crc_bitwise(spec, data + bytes(zeros))
        via_combine = crc_combine(
            spec, crc_bitwise(spec, data), crc_bitwise(spec, bytes(zeros)), zeros
        )
        assert via_combine == padded
        _ = advance  # exercised through crc_combine


class TestStreaming:
    @given(st.sampled_from(SPEC_IDS), st.binary(max_size=120),
           st.integers(min_value=0, max_value=119))
    @settings(max_examples=200, deadline=None)
    def test_split_updates_match_oneshot(self, name, data, cut):
        spec = CATALOG[name]
        cut = min(cut, len(data))
        h = StreamingCrc(spec)
        h.update(data[:cut])
        h.update(data[cut:])
        assert h.digest() == crc_bitwise(spec, data)
        assert h.length == len(data)

    def test_digest_mid_stream(self):
        spec = CATALOG["CRC-32/IEEE-802.3"]
        h = StreamingCrc(spec)
        h.update(b"123456789")
        assert h.digest() == 0xCBF43926
        h.update(b"more")
        assert h.digest() == crc_bitwise(spec, b"123456789more")

    def test_copy_forks(self):
        spec = CATALOG["CRC-16/CCITT-FALSE"]
        h = StreamingCrc(spec)
        h.update(b"shared")
        fork = h.copy()
        h.update(b"-a")
        fork.update(b"-b")
        assert h.digest() == crc_bitwise(spec, b"shared-a")
        assert fork.digest() == crc_bitwise(spec, b"shared-b")
