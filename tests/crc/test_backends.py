"""Differential tests for the generated kernel registry.

Every registered backend of every catalog spec must agree with the
bit-serial reference -- on the published check vectors, on random data
split at random chunk boundaries (including empty fragments), and
through ``StreamingCrc`` / ``crc_combine``.  Plus a regression test
that reproduces the seed's narrow-reflected ``StreamingCrc``
orientation bug against the exact old update/digest logic.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crc.backends import (
    BackendMismatch,
    Kernel,
    available_backends,
    crc_compute,
    dress,
    engine_init,
    get_kernel,
    kernels_for,
    register_backend,
    undress,
    _BUILDERS,
    _KERNELS,
)
from repro.crc.catalog import CATALOG
from repro.crc.engine import _reflect, crc_bitwise
from repro.crc.spec import CRCSpec
from repro.crc.stream import StreamingCrc, crc_combine

SPEC_IDS = sorted(CATALOG)

# Backends every environment must provide (wordwise additionally
# appears when numpy is importable; CI has numpy, so the identity gate
# in tools/backend_gate.py covers it there).
CORE_BACKENDS = ("bitwise", "bytewise", "slice4", "slice8")


# ---------------------------------------------------------------------------
# check vectors, every backend x every catalog spec
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", SPEC_IDS)
def test_every_backend_matches_check_vector(name):
    spec = CATALOG[name]
    for backend in available_backends(spec):
        assert crc_compute(spec, b"123456789", backend=backend) == spec.check, backend


@pytest.mark.parametrize("name", SPEC_IDS)
def test_core_backends_present(name):
    assert set(CORE_BACKENDS) <= set(available_backends(CATALOG[name]))


# ---------------------------------------------------------------------------
# hypothesis differential suite: random data at random chunk boundaries
# ---------------------------------------------------------------------------


@st.composite
def chunked_message(draw):
    """A message plus a chunking of it into fragments, some empty."""
    data = draw(st.binary(min_size=0, max_size=300))
    cuts = draw(
        st.lists(st.integers(min_value=0, max_value=len(data)), max_size=6)
    )
    bounds = [0, *sorted(cuts), len(data)]
    chunks = [data[a:b] for a, b in zip(bounds, bounds[1:])]
    return data, chunks


class TestDifferential:
    @given(st.sampled_from(SPEC_IDS), chunked_message())
    @settings(max_examples=200, deadline=None)
    def test_streaming_equals_reference_equals_backends(self, name, msg):
        spec = CATALOG[name]
        data, chunks = msg
        ref = crc_bitwise(spec, data)
        for backend in available_backends(spec):
            assert crc_compute(spec, data, backend=backend) == ref, backend
        h = StreamingCrc(spec)
        for chunk in chunks:
            h.update(chunk)
        assert h.digest() == ref
        assert h.length == len(data)

    @given(
        st.sampled_from(SPEC_IDS),
        st.binary(max_size=120),
        st.binary(max_size=120),
    )
    @settings(max_examples=200, deadline=None)
    def test_combine_equals_one_shot(self, name, a, b):
        spec = CATALOG[name]
        combined = crc_combine(
            spec, crc_bitwise(spec, a), crc_bitwise(spec, b), len(b)
        )
        assert combined == crc_bitwise(spec, a + b)

    @given(st.sampled_from(SPEC_IDS), st.binary(max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_kernels_restartable_mid_buffer(self, name, data):
        spec = CATALOG[name]
        for kernel in kernels_for(spec).values():
            start = engine_init(spec)
            mid = kernel.process(start, data[: len(data) // 2])
            assert kernel.process(mid, data[len(data) // 2:]) == kernel.process(
                start, data
            ), kernel.name


# ---------------------------------------------------------------------------
# refin != refout (CRC-12/UMTS is the only catalog entry)
# ---------------------------------------------------------------------------


class TestMixedReflection:
    def test_catalog_has_mixed_reflection_entry(self):
        assert any(s.refin != s.refout for s in CATALOG.values())

    def test_umts_streaming_digest(self):
        spec = CATALOG["CRC-12/UMTS"]
        assert spec.refin != spec.refout
        h = StreamingCrc(spec)
        h.update(b"1234")
        h.update(b"56789")
        assert h.digest() == spec.check == 0xDAF

    def test_umts_combine(self):
        spec = CATALOG["CRC-12/UMTS"]
        a, b = b"header", b"payload!"
        assert crc_combine(
            spec, crc_bitwise(spec, a), crc_bitwise(spec, b), len(b)
        ) == crc_bitwise(spec, a + b)

    def test_dress_undress_round_trip(self):
        for spec in CATALOG.values():
            for raw in (0, spec.mask, 0x5C17_93A6 & spec.mask):
                assert undress(spec, dress(spec, raw)) == raw


# ---------------------------------------------------------------------------
# regression: the seed's narrow-reflected StreamingCrc bug
# ---------------------------------------------------------------------------


def _seed_streaming_digest(spec: CRCSpec, chunks) -> int:
    """The seed repo's StreamingCrc update/digest logic, verbatim, for
    the width < 8 path: the (already reflected) stored register was
    passed as ``init`` to a normal-presentation ``crc_bitwise`` spec,
    and ``digest`` skipped the output reflection whenever
    ``refin == refout``."""
    register = _reflect(spec.init, spec.width) if spec.refin else spec.init
    for data in chunks:
        plain = CRCSpec(
            name=spec.name, width=spec.width, poly=spec.poly,
            init=register, refin=spec.refin,
        )
        register = crc_bitwise(plain, data)
    if spec.refin != spec.refout:
        register = _reflect(register, spec.width)
    return register ^ spec.xorout


class TestNarrowReflectedRegression:
    def test_seed_logic_was_wrong_on_crc5_usb(self):
        spec = CATALOG["CRC-5/USB"]
        assert spec.width < 8 and spec.refin and spec.refout
        assert _seed_streaming_digest(spec, [b"123456789"]) != spec.check

    def test_new_streaming_is_right_on_crc5_usb(self):
        spec = CATALOG["CRC-5/USB"]
        h = StreamingCrc(spec)
        for chunk in (b"123", b"", b"456789"):
            h.update(chunk)
        assert h.digest() == spec.check == 0x19

    @given(st.binary(min_size=1, max_size=60))
    @settings(max_examples=100, deadline=None)
    def test_seed_and_new_agree_only_when_register_palindromic(self, data):
        # The old logic happens to survive inputs whose running register
        # is a 5-bit palindrome; the new path must match the reference
        # everywhere.
        spec = CATALOG["CRC-5/USB"]
        h = StreamingCrc(spec)
        h.update(data)
        assert h.digest() == crc_bitwise(spec, data)


# ---------------------------------------------------------------------------
# registry mechanics
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_kernel_cache_shared_across_presentation(self):
        # Same (width, poly, refin), different init/refout/xorout:
        # one kernel object.
        ieee = CATALOG["CRC-32/IEEE-802.3"]
        twin = CRCSpec(name="twin", width=32, poly=0x04C11DB7, refin=True)
        assert ieee.kernel_key == twin.kernel_key
        assert get_kernel(ieee, "slice8") is get_kernel(twin, "slice8")

    def test_unknown_backend_raises(self):
        with pytest.raises(KeyError, match="no 'nope' backend"):
            get_kernel(CATALOG["CRC-8/ATM-HEC"], "nope")

    def test_generated_source_is_kept(self):
        kernel = get_kernel(CATALOG["CRC-32/IEEE-802.3"], "slice4")
        assert "def _process" in kernel.source

    def test_auto_selects_a_table_kernel(self):
        spec = CATALOG["CRC-16/ARC"]
        assert get_kernel(spec, "auto").name in ("slice8", "bytewise")

    def test_bad_backend_rejected_at_construction(self):
        # A kernel that computes the wrong thing must never be served.
        def broken_builder(width, poly, refin):
            return Kernel("broken", lambda reg, data: reg ^ 1, "# broken")

        register_backend("broken", broken_builder)
        try:
            with pytest.raises(BackendMismatch):
                kernels_for(CATALOG["CRC-8/ATM-HEC"])
        finally:
            del _BUILDERS["broken"]
            _KERNELS.clear()
        # registry recovers once the bad builder is gone
        assert "slice8" in available_backends(CATALOG["CRC-8/ATM-HEC"])

    def test_narrow_specs_have_slice_kernels(self):
        # The point of codegen: width-5 reflected and width-12 mixed
        # specs get the same fast paths as CRC-32.
        for name in ("CRC-5/USB", "CRC-12/UMTS"):
            assert {"slice4", "slice8"} <= set(available_backends(CATALOG[name]))


# ---------------------------------------------------------------------------
# wordwise (numpy) kernel specifics
# ---------------------------------------------------------------------------

np = pytest.importorskip("numpy")


class TestWordwise:
    @pytest.mark.parametrize("name", SPEC_IDS)
    def test_long_buffer_matches_reference(self, name):
        spec = CATALOG[name]
        data = bytes((i * 89 + 17) & 0xFF for i in range(3000))
        assert crc_compute(spec, data, backend="wordwise") == crc_bitwise(spec, data)

    def test_auto_cutover_uses_wordwise_result(self):
        spec = CATALOG["CRC-32C/Castagnoli"]
        data = bytes(1024)
        assert crc_compute(spec, data) == crc_bitwise(spec, data)

    def test_non_power_of_two_lengths(self):
        spec = CATALOG["CRC-32/IEEE-802.3"]
        kernel = get_kernel(spec, "wordwise")
        for n in (1, 2, 3, 5, 255, 256, 257, 1000):
            data = bytes((i * 7 + n) & 0xFF for i in range(n))
            assert kernel.process(engine_init(spec), data) == get_kernel(
                spec, "bitwise"
            ).process(engine_init(spec), data)
