"""Presentation parameters (init/refin/refout/xorout) do not affect
error detection -- the claim that lets the paper (and repro.hd) reason
about bare generators only.

For the *same* error pattern applied to the wire image, a frame
checked under any presentation of the same generator is detected (or
missed) identically, because reflection is a fixed bijection of bit
positions and init/xorout cancel in the comparison.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crc.codeword import append_fcs, check_fcs
from repro.crc.spec import CRCSpec

BARE = CRCSpec(name="bare", width=32, poly=0x04C11DB7)
DRESSED = CRCSpec(
    name="dressed", width=32, poly=0x04C11DB7,
    init=0xFFFFFFFF, xorout=0xFFFFFFFF,
)


def _flip_bits(frame: bytes, positions: list[int]) -> bytes:
    data = bytearray(frame)
    for p in positions:
        data[len(data) - 1 - p // 8] ^= 1 << (p % 8)
    return bytes(data)


class TestInitXoroutInvariance:
    @given(
        st.binary(min_size=4, max_size=60),
        st.lists(st.integers(min_value=0, max_value=400), min_size=1, max_size=6, unique=True),
    )
    @settings(max_examples=200, deadline=None)
    def test_same_patterns_detected(self, data, positions):
        fb = append_fcs(BARE, data)
        fd = append_fcs(DRESSED, data)
        positions = [p % (len(fb) * 8) for p in positions]
        db = check_fcs(BARE, _flip_bits(fb, positions))
        dd = check_fcs(DRESSED, _flip_bits(fd, positions))
        assert db == dd

    @given(st.binary(min_size=4, max_size=40))
    @settings(max_examples=50)
    def test_clean_frames_pass_both(self, data):
        assert check_fcs(BARE, append_fcs(BARE, data))
        assert check_fcs(DRESSED, append_fcs(DRESSED, data))


class TestReflectionInvariance:
    """Reflected presentations permute bit positions, so the *set* of
    undetectable patterns is a permutation of the bare one; in
    particular the counts by weight (the W_k) are identical.  We test
    the observable consequence: a pattern undetectable under the
    reflected spec maps to an undetectable pattern under the bare spec
    with the same weight."""

    @given(
        st.binary(min_size=4, max_size=40),
        st.lists(st.integers(min_value=0, max_value=300), min_size=1, max_size=5, unique=True),
    )
    @settings(max_examples=200, deadline=None)
    def test_weight_preserving_correspondence(self, data, raw_positions):
        reflected = CRCSpec(
            name="refl", width=32, poly=0x04C11DB7, refin=True, refout=True,
        )
        frame = append_fcs(reflected, data)
        nbits = len(frame) * 8
        positions = sorted({p % nbits for p in raw_positions})
        corrupted = _flip_bits(frame, positions)
        survived = check_fcs(reflected, corrupted)
        # Reflection maps bit p (within its byte) to bit 7-p; apply the
        # same per-byte reversal to the pattern and replay on the bare
        # spec's frame.
        mirrored = sorted((p // 8) * 8 + (7 - p % 8) for p in positions)
        bare_frame = append_fcs(BARE, data)
        bare_survived = check_fcs(BARE, _flip_bits(bare_frame, mirrored))
        assert survived == bare_survived
        assert len(mirrored) == len(positions)  # weight preserved
