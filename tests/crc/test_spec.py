"""Tests for CRCSpec validation and derived properties."""

from __future__ import annotations

import pytest

from repro.crc.spec import CRCSpec, spec_from_full_poly


class TestValidation:
    def test_basic_construction(self):
        s = CRCSpec(name="t", width=8, poly=0x07)
        assert s.mask == 0xFF
        assert s.topbit == 0x80

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            CRCSpec(name="t", width=0, poly=1)

    def test_rejects_oversized_poly(self):
        with pytest.raises(ValueError):
            CRCSpec(name="t", width=8, poly=0x107)

    def test_rejects_oversized_init(self):
        with pytest.raises(ValueError):
            CRCSpec(name="t", width=8, poly=0x07, init=0x100)

    def test_rejects_poly_without_plus_one(self):
        with pytest.raises(ValueError):
            CRCSpec(name="t", width=8, poly=0x06)


class TestDerived:
    def test_full_poly(self):
        s = CRCSpec(name="t", width=32, poly=0x04C11DB7)
        assert s.full_poly == 0x104C11DB7
        assert s.koopman == 0x82608EDB

    def test_plain_strips_presentation(self):
        s = CRCSpec(
            name="t", width=32, poly=0x04C11DB7,
            init=0xFFFFFFFF, refin=True, refout=True, xorout=0xFFFFFFFF,
        )
        p = s.plain()
        assert (p.init, p.refin, p.refout, p.xorout) == (0, False, False, 0)
        assert p.poly == s.poly

    def test_spec_from_full_poly(self):
        s = spec_from_full_poly(0x104C11DB7)
        assert (s.width, s.poly) == (32, 0x04C11DB7)

    def test_str_is_informative(self):
        s = CRCSpec(name="x", width=8, poly=0x07)
        assert "width=8" in str(s) and "0x7" in str(s)
