"""FCS handling and codeword membership tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crc.catalog import CATALOG
from repro.crc.codeword import (
    append_fcs,
    check_fcs,
    codeword_from_message,
    is_codeword,
    syndrome_of_bits,
)
from repro.crc.spec import CRCSpec

BYTE_SPECS = [n for n, s in CATALOG.items() if s.width % 8 == 0]


class TestFcsRoundtrip:
    @given(st.sampled_from(BYTE_SPECS), st.binary(min_size=0, max_size=100))
    @settings(max_examples=150, deadline=None)
    def test_append_then_check(self, name, data):
        spec = CATALOG[name]
        assert check_fcs(spec, append_fcs(spec, data))

    @given(st.sampled_from(BYTE_SPECS), st.binary(min_size=1, max_size=64),
           st.integers(min_value=0), st.integers(min_value=0, max_value=7))
    @settings(max_examples=150, deadline=None)
    def test_single_bit_flip_detected(self, name, data, byte_pos, bit):
        # Any single-bit error is detected by any CRC.
        spec = CATALOG[name]
        frame = bytearray(append_fcs(spec, data))
        frame[byte_pos % len(frame)] ^= 1 << bit
        assert not check_fcs(spec, bytes(frame))

    def test_short_frame_fails(self):
        spec = CATALOG["CRC-32/IEEE-802.3"]
        assert not check_fcs(spec, b"\x01")

    def test_non_byte_width_rejected(self):
        spec = CRCSpec(name="t", width=5, poly=0x15)
        with pytest.raises(ValueError):
            append_fcs(spec, b"x")


class TestCodewords:
    def test_docstring_example(self):
        # message 101 -> codeword 101100 == (x^3+x+1) * x^2
        s = CRCSpec(name="toy", width=3, poly=0b011)
        assert codeword_from_message(s, [1, 0, 1]) == [1, 0, 1, 1, 0, 0]

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=60))
    @settings(max_examples=200)
    def test_codewords_are_divisible(self, message):
        s = CRCSpec(name="toy", width=8, poly=0x07)
        cw = codeword_from_message(s, message)
        assert is_codeword(s, cw)

    @given(
        st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=40),
        st.integers(min_value=0),
    )
    @settings(max_examples=200)
    def test_single_flip_leaves_codeword_set(self, message, pos):
        s = CRCSpec(name="toy", width=8, poly=0x07)
        cw = codeword_from_message(s, message)
        cw[pos % len(cw)] ^= 1
        assert not is_codeword(s, cw)

    def test_codeword_set_closed_under_xor(self):
        s = CRCSpec(name="toy", width=8, poly=0x07)
        a = codeword_from_message(s, [1, 0, 1, 1])
        b = codeword_from_message(s, [0, 1, 1, 0])
        xored = [x ^ y for x, y in zip(a, b)]
        assert is_codeword(s, xored)


class TestSyndromes:
    def test_generator_positions_have_zero_syndrome(self):
        # The generator itself, as a position set, is a codeword.
        s = CRCSpec(name="toy", width=8, poly=0x07)
        positions = [i for i in range(33) if (s.full_poly >> i) & 1]
        assert syndrome_of_bits(s, positions) == 0

    def test_single_position(self):
        s = CRCSpec(name="toy", width=3, poly=0b011)
        assert syndrome_of_bits(s, [0]) == 1
        assert syndrome_of_bits(s, [3]) == 0b011  # x^3 mod (x^3+x+1)

    def test_negative_position_rejected(self):
        s = CRCSpec(name="toy", width=3, poly=0b011)
        with pytest.raises(ValueError):
            syndrome_of_bits(s, [-1])
