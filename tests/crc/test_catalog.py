"""Catalog integrity tests: the paper's polynomial records."""

from __future__ import annotations

import pytest

from repro.crc.catalog import (
    CASTAGNOLI_CORRECT_FULL,
    CASTAGNOLI_TYPO_FULL,
    PAPER_POLYS,
    get_spec,
    paper_poly,
)
from repro.gf2.notation import class_signature
from repro.gf2.order import hd2_data_word_limit
from repro.gf2.poly import divisible_by_x_plus_1


class TestLookups:
    def test_get_spec_known(self):
        assert get_spec("CRC-32/IEEE-802.3").width == 32

    def test_get_spec_unknown(self):
        with pytest.raises(KeyError, match="unknown CRC"):
            get_spec("CRC-99/NOPE")

    def test_paper_poly_unknown(self):
        with pytest.raises(KeyError, match="unknown paper polynomial"):
            paper_poly("CAFEBABE")


class TestPaperPolyRecords:
    @pytest.mark.parametrize("key", sorted(PAPER_POLYS))
    def test_factor_class_matches_computed(self, key):
        pp = PAPER_POLYS[key]
        assert class_signature(pp.full) == pp.factor_class

    @pytest.mark.parametrize("key", sorted(PAPER_POLYS))
    def test_full_encoding_shape(self, key):
        pp = PAPER_POLYS[key]
        assert pp.full >> 32 == 1 and pp.full & 1

    @pytest.mark.parametrize("key", sorted(PAPER_POLYS))
    def test_hd2_onset_consistent_with_hd4_claim(self, key):
        # Where Table 1 records an HD=4 (or 5) band ending at L, the
        # order-derived HD>=3 limit must be >= L.
        pp = PAPER_POLYS[key]
        limit = hd2_data_word_limit(pp.full)
        for hd, last in pp.hd_breaks.items():
            if hd >= 3:
                assert limit >= last, (key, hd)

    @pytest.mark.parametrize("key", sorted(PAPER_POLYS))
    def test_breaks_nest(self, key):
        # Higher HD never persists past a lower HD's limit.
        pp = PAPER_POLYS[key]
        items = sorted(pp.hd_breaks.items())
        for (hd_lo, len_lo), (hd_hi, len_hi) in zip(items, items[1:]):
            assert len_lo >= len_hi, (key, hd_lo, hd_hi)

    def test_hd_at_interpolation(self):
        pp = PAPER_POLYS["BA0DC66B"]
        assert pp.hd_at(12112) == 6
        assert pp.hd_at(16360) == 6
        assert pp.hd_at(16361) == 4
        assert pp.hd_at(114663) == 4
        assert pp.hd_at(114664) == 2

    def test_hd6_at_mtu_polys_divisible_by_x_plus_1(self):
        # The paper's §4.2 law is about HD=6 *at MTU length* (802.3
        # reaches HD=6 only to 268 bits and is exempt).
        for key, pp in PAPER_POLYS.items():
            if pp.hd_breaks.get(6, 0) >= 12112:
                assert divisible_by_x_plus_1(pp.full), key
        # ...and it is non-vacuous: four of the eight qualify.
        qualifying = [
            k for k, pp in PAPER_POLYS.items() if pp.hd_breaks.get(6, 0) >= 12112
        ]
        assert sorted(qualifying) == [
            "90022004", "992C1A4C", "BA0DC66B", "FA567D89",
        ]


class TestCastagnoliErratum:
    def test_typo_is_one_bit_off(self):
        assert (CASTAGNOLI_TYPO_FULL ^ CASTAGNOLI_CORRECT_FULL).bit_count() == 1

    def test_correct_value_is_fa567d89(self):
        assert CASTAGNOLI_CORRECT_FULL == paper_poly("FA567D89").full
