"""Parallel-CRC construction tests and the hardware-cost metric."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crc.engine import crc_bits
from repro.crc.parallel import ParallelCrc, compare_hardware_cost
from repro.crc.spec import CRCSpec
from repro.gf2.notation import koopman_to_full

BARE32 = CRCSpec(name="bare32", width=32, poly=0x04C11DB7)
BARE8 = CRCSpec(name="bare8", width=8, poly=0x07)


class TestConstruction:
    @pytest.mark.parametrize("datapath", [1, 4, 8, 16, 32])
    def test_matches_bit_serial(self, datapath):
        pc = ParallelCrc.build(BARE32, datapath)
        bits = [int(b) for b in format(0xDEADBEEF00C0FFEE, "064b")]
        assert pc.run(bits) == crc_bits(BARE32, bits)

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=8, max_size=80),
           st.sampled_from([1, 2, 4, 8]))
    @settings(max_examples=150, deadline=None)
    def test_property_equivalence(self, bits, datapath):
        bits = bits[: len(bits) - (len(bits) % datapath)]
        if not bits:
            return
        pc = ParallelCrc.build(BARE8, datapath)
        assert pc.run(bits) == crc_bits(BARE8, bits)

    def test_rejects_reflected(self):
        spec = CRCSpec(name="r", width=32, poly=0x04C11DB7, refin=True)
        with pytest.raises(ValueError):
            ParallelCrc.build(spec, 8)

    def test_rejects_misaligned_message(self):
        pc = ParallelCrc.build(BARE8, 8)
        with pytest.raises(ValueError):
            pc.run([1, 0, 1])

    def test_rejects_wide_input(self):
        pc = ParallelCrc.build(BARE8, 4)
        with pytest.raises(ValueError):
            pc.step(0, 0x1F)


class TestHardwareCost:
    def test_sparse_polys_cost_less(self):
        costs = compare_hardware_cost({
            "802.3": koopman_to_full(0x82608EDB),
            "90022004": koopman_to_full(0x90022004),
            "80108400": koopman_to_full(0x80108400),
        }, datapath=8)
        # the paper's claim, quantified: fewer generator terms =>
        # fewer XOR terms in the synthesized parallel network
        assert costs["90022004"]["xor_terms"] < costs["802.3"]["xor_terms"]
        assert costs["80108400"]["xor_terms"] < costs["802.3"]["xor_terms"]

    def test_cost_grows_with_datapath(self):
        narrow = ParallelCrc.build(BARE32, 4).xor_term_count()
        wide = ParallelCrc.build(BARE32, 32).xor_term_count()
        assert wide > narrow

    def test_fanin_positive(self):
        pc = ParallelCrc.build(BARE32, 8)
        assert pc.max_fanin() >= 2
