"""Worker-level tests: drain loop, crash semantics, duplicate counts."""

from __future__ import annotations

import pytest

from repro.dist.faults import FaultPlan, WorkerCrashed
from repro.dist.queue import TaskQueue
from repro.dist.tasks import partition_space
from repro.dist.worker import ChunkWorker, drain
from repro.search.exhaustive import SearchConfig, search_all

CFG = SearchConfig(width=6, target_hd=4, filter_lengths=(8, 20),
                   confirm_weights=False)


def make_queue(chunk_size=8):
    return TaskQueue(partition_space(6, chunk_size), lease_duration=100.0)


class TestDrain:
    def test_single_worker_drains_everything(self):
        queue = make_queue()
        worker = ChunkWorker("w0", CFG)
        seen = []
        drain(worker, queue, lambda t, r, w: seen.append((t.chunk_id, r.examined)))
        assert queue.all_done
        assert sorted(c for c, _ in seen) == [0, 1, 2, 3]
        from repro.search.exhaustive import expected_examined

        # only canonical (reciprocal-deduped) candidates are examined
        assert sum(e for _, e in seen) == expected_examined(6) == 20

    def test_drain_results_match_direct(self):
        queue = make_queue()
        worker = ChunkWorker("w0", CFG)
        collected = []
        drain(worker, queue, lambda t, r, w: collected.extend(r.records))
        direct = search_all(CFG)
        assert {rec.poly: rec.survived for rec in collected} == {
            rec.poly: rec.survived for rec in direct.records
        }

    def test_crash_stops_drain(self):
        queue = make_queue()
        plan = FaultPlan(crash_points={"w0": 1})
        worker = ChunkWorker("w0", CFG, faults=plan)
        seen = []
        drain(worker, queue, lambda t, r, w: seen.append(t.chunk_id))
        assert len(seen) == 1       # completed one, crashed on second
        assert not worker.alive
        assert queue.done == 1
        assert queue.leased == 1    # abandoned lease, not yet expired

    def test_dead_worker_raises_on_reuse(self):
        queue = make_queue()
        plan = FaultPlan(crash_points={"w0": 0})
        worker = ChunkWorker("w0", CFG, faults=plan)
        with pytest.raises(WorkerCrashed):
            worker.run_one(queue, 0.0)
        with pytest.raises(WorkerCrashed):
            worker.run_one(queue, 1.0)

    def test_duplicate_delivery_count(self):
        queue = make_queue()
        plan = FaultPlan(duplicate_completions={"w0": 2})
        worker = ChunkWorker("w0", CFG, faults=plan)
        deliveries = []
        drain(worker, queue, lambda t, r, w: deliveries.append(t.chunk_id))
        # 4 chunks; the third (index 2) delivered twice
        assert len(deliveries) == 5
        assert deliveries.count(deliveries[2]) == 2

    def test_straggler_advances_clock(self):
        queue = make_queue()
        plan = FaultPlan(straggle={"w0": 4.0})
        worker = ChunkWorker("w0", CFG, faults=plan)
        end = drain(worker, queue, lambda t, r, w: None, time_per_chunk=1.0)
        assert end == pytest.approx(16.0)  # 4 chunks x 4x slowdown


class TestCounterInvariant:
    """Crash injection and duplicate injection are addressed by one
    counter (the started-chunk ordinal, surfaced as
    ``last_chunk_number``); ``chunks_started`` and ``chunks_completed``
    may diverge only by the single chunk a crash swallowed."""

    def test_clean_worker_counters_agree(self):
        queue = make_queue()
        worker = ChunkWorker("w0", CFG)
        drain(worker, queue, lambda t, r, w: None)
        assert worker.chunks_started == worker.chunks_completed == 4
        assert worker.last_chunk_number == worker.chunks_started - 1

    def test_crashed_worker_diverges_by_exactly_one(self):
        queue = make_queue()
        plan = FaultPlan(crash_points={"w0": 2})
        worker = ChunkWorker("w0", CFG, faults=plan)
        drain(worker, queue, lambda t, r, w: None)
        assert not worker.alive
        assert worker.chunks_started == worker.chunks_completed + 1
        # the ordinal of the chunk the crash swallowed
        assert worker.last_chunk_number == 2

    def test_duplicate_keyed_by_started_ordinal(self):
        # A duplicate scheduled for the same ordinal a crash consumes
        # must never fire: the chunk was started but not completed.
        queue = make_queue()
        plan = FaultPlan(crash_points={"w0": 1},
                         duplicate_completions={"w0": 1})
        worker = ChunkWorker("w0", CFG, faults=plan)
        deliveries = []
        drain(worker, queue, lambda t, r, w: deliveries.append(t.chunk_id))
        assert deliveries == [0]  # one clean chunk, no phantom duplicate
