"""End-to-end farm campaigns over the loopback transport.

Every test runs a real :class:`WorkServer` and real
:class:`WorkClient` workers in one event loop -- the protocol, the
lease machinery, the obs mail-home and the fault recovery paths are
all the production code; only the wire is in-process.  The recurring
assertion is the campaign invariant: whatever the faults did, the
final :class:`CampaignRecord` is bit-identical to a fault-free run's.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.dist.faults import FaultPlan
from repro.dist.net import WorkClient, WorkServer, WorkerKilled
from repro.dist.tasks import partition_space
from repro.dist.transport import FaultyTransport, LoopbackTransport
from repro.obs.events import EventLog, read_events
from repro.obs.report import RunReport
from repro.search.exhaustive import SearchConfig, search_chunk
from repro.search.records import CampaignRecord

CFG = SearchConfig(width=8, target_hd=4, filter_lengths=(16, 40, 100),
                   confirm_weights=False)
CHUNK_SIZE = 16  # 8 chunks
MAX_SECONDS = 60.0


def reference_record() -> CampaignRecord:
    ref = CampaignRecord(
        width=CFG.width, data_word_bits=CFG.final_length,
        target_hd=CFG.target_hd,
    )
    for task in partition_space(CFG.width, CHUNK_SIZE):
        res = search_chunk(CFG, task.start_index, task.end_index)
        ref.merge_chunk(task.chunk_id, res.records, res.examined)
    return ref


def make_server(transport, **kwargs) -> WorkServer:
    kwargs.setdefault("lease_duration", 1.0)
    kwargs.setdefault("handle_signals", False)
    kwargs.setdefault("max_seconds", MAX_SECONDS)
    kwargs.setdefault("retry_backoff", 0.01)
    return WorkServer(CFG, CHUNK_SIZE, transport, **kwargs)


def make_client(transport, worker_id, **kwargs) -> WorkClient:
    kwargs.setdefault("ack_timeout", 0.8)
    kwargs.setdefault("reconnect_base", 0.02)
    kwargs.setdefault("reconnect_cap", 0.2)
    kwargs.setdefault("max_connect_attempts", 30)
    return WorkClient("loopback:0", transport, worker_id, **kwargs)


async def run_farm(server, clients):
    """Gather the server and workers; workers' exceptions (the
    injected kills) become string outcomes instead of failing the
    gather."""

    async def run_client(client):
        try:
            return await client.run()
        except WorkerKilled:
            return "killed"

    return await asyncio.gather(
        server.serve(), *[run_client(c) for c in clients]
    )


class TestFaultFreeFarm:
    def test_three_workers_complete_the_campaign(self):
        transport = LoopbackTransport()
        server = make_server(transport)
        clients = [make_client(transport, f"w{i}") for i in range(3)]
        rcs = asyncio.run(run_farm(server, clients))
        assert rcs == [0, 0, 0, 0]
        assert server.queue.all_done
        assert server.campaign.to_json() == reference_record().to_json()
        assert server.stats.completions == len(server.queue)
        assert server.stats.duplicate_deliveries == 0
        # Every worker connected exactly once and the books balance.
        assert sum(b.chunks for b in server.workers.values()) == len(
            server.queue
        )
        assert all(b.connections == 1 for b in server.workers.values())

    def test_single_worker_farm(self):
        transport = LoopbackTransport()
        server = make_server(transport)
        client = make_client(transport, "solo")
        rcs = asyncio.run(run_farm(server, [client]))
        assert rcs == [0, 0]
        assert server.campaign.to_json() == reference_record().to_json()
        assert client.stats.chunks == len(server.queue)

    def test_events_feed_run_report_per_worker_accounting(self, tmp_path):
        log = tmp_path / "farm.jsonl"
        transport = LoopbackTransport()
        with EventLog(log) as events:
            server = make_server(transport, events=events)
            clients = [make_client(transport, f"w{i}") for i in range(2)]
            asyncio.run(run_farm(server, clients))
        names = [rec["event"] for rec in read_events(log)]
        assert "campaign.start" in names
        assert "worker.hello" in names
        assert "campaign.end" in names
        report = RunReport.from_path(log)
        assert set(report.workers) == {"w0", "w1"}
        assert (
            sum(w["chunks"] for w in report.workers.values())
            == report.chunks_completed
            == len(server.queue)
        )
        assert all(
            w["connections"] == 1 and w["reconnects"] == 0
            for w in report.workers.values()
        )
        rendered = report.render()
        assert "workers: 2 host(s)" in rendered


class TestFaultRecovery:
    def test_dropped_complete_is_resent_after_reconnect(self):
        plan = FaultPlan(net_drop_complete={"w0": {0}})
        transport = FaultyTransport(LoopbackTransport(), plan)
        server = make_server(transport)
        clients = [make_client(transport, f"w{i}", faults=plan)
                   for i in range(2)]
        rcs = asyncio.run(run_farm(server, clients))
        assert rcs == [0, 0, 0]
        assert server.campaign.to_json() == reference_record().to_json()
        assert clients[0].stats.reconnects >= 1
        assert clients[0].stats.resent_completes >= 1
        assert server.workers["w0"].connections >= 2

    def test_duplicated_complete_merges_once(self):
        plan = FaultPlan(net_duplicate_complete={"w0": {0}})
        transport = FaultyTransport(LoopbackTransport(), plan)
        server = make_server(transport)
        clients = [make_client(transport, f"w{i}", faults=plan)
                   for i in range(2)]
        rcs = asyncio.run(run_farm(server, clients))
        assert rcs == [0, 0, 0]
        assert server.campaign.to_json() == reference_record().to_json()
        assert server.stats.duplicate_deliveries == 1
        assert server.stats.completions == len(server.queue)

    def test_severed_connection_reconnects_and_finishes(self):
        plan = FaultPlan(net_sever_after={"w0": 3})
        transport = FaultyTransport(LoopbackTransport(), plan)
        server = make_server(transport)
        clients = [make_client(transport, f"w{i}", faults=plan)
                   for i in range(2)]
        rcs = asyncio.run(run_farm(server, clients))
        assert rcs == [0, 0, 0]
        assert server.campaign.to_json() == reference_record().to_json()
        assert server.workers["w0"].connections == 2

    def test_killed_worker_strands_a_lease_the_reaper_reclaims(self):
        plan = FaultPlan(net_kill_after={"w0": 1})
        transport = FaultyTransport(LoopbackTransport(), plan)
        server = make_server(transport)
        clients = [make_client(transport, f"w{i}", faults=plan)
                   for i in range(2)]
        rcs = asyncio.run(run_farm(server, clients))
        assert rcs == [0, "killed", 0]
        assert server.campaign.to_json() == reference_record().to_json()
        # w0 died holding a lease; the reaper expired it and w1
        # computed the chunk.
        assert server.stats.lease_expiries >= 1
        assert server.workers["w0"].expiries >= 1

    def test_fault_budget_benches_a_flaky_worker(self):
        plan = FaultPlan(net_kill_after={"w0": 0})  # dies on first lease
        transport = FaultyTransport(LoopbackTransport(), plan)
        server = make_server(transport, worker_fault_budget=1)
        clients = [make_client(transport, f"w{i}", faults=plan)
                   for i in range(2)]
        rcs = asyncio.run(run_farm(server, clients))
        assert rcs == [0, "killed", 0]
        assert server.campaign.to_json() == reference_record().to_json()
        assert server.workers["w0"].benched
        assert server.workers["w0"].chunks == 0
        assert server.workers["w1"].chunks == len(server.queue)


class TestDrainAndResume:
    def test_drain_checkpoints_and_resume_completes(self, tmp_path):
        ckpt = str(tmp_path / "farm.ckpt")
        plan = FaultPlan(kill_signal_after=3)
        transport = LoopbackTransport()
        server = make_server(
            transport, checkpoint_path=ckpt, checkpoint_every=2,
            faults=plan, drain_grace=2.0,
        )
        clients = [make_client(transport, f"w{i}") for i in range(2)]
        asyncio.run(run_farm(server, clients))
        assert server.interrupted == "SIGTERM"
        assert 0 < server.queue.done < len(server.queue)

        transport2 = LoopbackTransport()
        server2 = make_server(transport2, checkpoint_path=ckpt)
        skipped = server2.resume()
        assert skipped == server.queue.done
        clients2 = [make_client(transport2, f"x{i}") for i in range(2)]
        rcs = asyncio.run(run_farm(server2, clients2))
        assert rcs == [0, 0, 0]
        assert server2.campaign.to_json() == reference_record().to_json()
        assert server2.stats.skipped_from_checkpoint == skipped

    def test_draining_server_turns_workers_away(self):
        transport = LoopbackTransport()
        # Drain immediately after the first completion; workers must
        # exit 0 with the "drained" outcome, not hang or crash.
        server = make_server(
            transport, faults=FaultPlan(kill_signal_after=1),
            drain_grace=1.0,
        )
        clients = [make_client(transport, f"w{i}") for i in range(2)]
        rcs = asyncio.run(run_farm(server, clients))
        assert rcs[0] == 0 and all(rc == 0 for rc in rcs[1:])
        assert server.interrupted == "SIGTERM"
        assert any(c.outcome == "drained" for c in clients)


class TestObsMailHome:
    def test_worker_metrics_and_spans_reach_the_coordinator(self, tmp_path):
        log = tmp_path / "farm.jsonl"
        transport = LoopbackTransport()
        with EventLog(log) as events:
            server = make_server(
                transport, events=events, collect_metrics=True
            )
            clients = [make_client(transport, "w0")]
            asyncio.run(run_farm(server, clients))
        # Worker-side screening counters merged into the coordinator's
        # registry via the completion mail-home.
        snapshot = server.metrics.snapshot()
        assert snapshot is not None
        counters = snapshot.get("counters", {})
        assert counters.get("work.lease", 0) == len(server.queue)
        spans = [
            rec for rec in read_events(log) if rec["event"] == "trace.span"
        ]
        names = {rec.get("name") for rec in spans}
        # lease -> remote dispatch -> worker compute -> merge, one tree
        # per chunk, with the worker's spans re-parented under ours.
        assert {"chunk", "chunk.remote", "chunk.compute", "chunk.merge"} <= names
        assert any(rec.get("remote") for rec in spans)

    def test_campaign_json_round_trips(self):
        transport = LoopbackTransport()
        server = make_server(transport)
        clients = [make_client(transport, "w0")]
        asyncio.run(run_farm(server, clients))
        dumped = server.campaign.to_json()
        assert (
            CampaignRecord.from_json(dumped).to_json() == dumped
        )
        assert json.loads(dumped)["chunks_done"] == list(
            range(len(server.queue))
        )
