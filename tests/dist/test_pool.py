"""Wall-clock process-pool campaign tests.

Governing invariant (same as the simulated coordinator's): whatever
happens to the subprocesses -- crashes, hard kills, duplicate
deliveries, mid-flight shutdown plus resume -- the finished campaign
record is identical to a clean single-process run.
"""

from __future__ import annotations

import pickle

import pytest

from repro.dist.checkpoint import CheckpointMismatch
from repro.dist.faults import POOL_CRASH, POOL_KILL, FaultPlan
from repro.dist.pool import ParallelCoordinator, _run_chunk
from repro.search.exhaustive import SearchConfig, search_all, search_chunk

CFG = SearchConfig(width=8, target_hd=4, filter_lengths=(16, 40, 100),
                   confirm_weights=False)
MAX_SECONDS = 120.0  # far above normal; guards CI against a wedged pool


@pytest.fixture(scope="module")
def baseline():
    res = search_all(CFG)
    return {r.poly: r.survived for r in res.records}, res.examined


def make_runner(**kwargs):
    kwargs.setdefault("config", CFG)
    kwargs.setdefault("chunk_size", 8)
    kwargs.setdefault("processes", 2)
    kwargs.setdefault("lease_duration", 0.5)
    kwargs.setdefault("max_seconds", MAX_SECONDS)
    return ParallelCoordinator(**kwargs)


def assert_matches_baseline(runner, baseline):
    truth, examined = baseline
    assert runner.queue.all_done
    assert runner.campaign.candidates_examined == examined
    assert {
        r.poly: r.survived for r in runner.campaign.results.values()
    } == truth


class TestPicklability:
    def test_chunk_payloads_round_trip(self):
        """The pool pickles configs out and results back; both must
        survive unchanged (witnesses, weights, stage kills and all)."""
        assert pickle.loads(pickle.dumps(CFG)) == CFG
        res = search_chunk(CFG, 0, 16)
        back = pickle.loads(pickle.dumps(res))
        assert back.records == res.records
        assert back.examined == res.examined
        assert back.stage_kills == res.stage_kills

    def test_subprocess_entry_is_importable_by_name(self):
        # ProcessPoolExecutor pickles the callable by qualified name.
        assert _run_chunk.__module__ == "repro.dist.pool"
        assert _run_chunk.__qualname__ == "_run_chunk"


class TestCleanRun:
    def test_matches_direct_search(self, baseline):
        runner = make_runner()
        runner.run()
        assert_matches_baseline(runner, baseline)
        assert runner.stats.duplicate_deliveries == 0
        assert runner.stats.crashes == 0

    def test_single_process_matches_four(self, baseline):
        one = make_runner(processes=1)
        one.run()
        four = make_runner(processes=4)
        four.run()
        assert_matches_baseline(one, baseline)
        assert_matches_baseline(four, baseline)
        # Full record equality, not just survivor sets: same chunks,
        # same counts, same per-poly outcomes.
        assert one.campaign == four.campaign

    def test_rejects_zero_processes(self):
        with pytest.raises(ValueError, match="processes"):
            make_runner(processes=0)


class TestFaultTolerance:
    def test_soft_crash_reassigned_after_lease_expiry(self, baseline):
        plan = FaultPlan(crash_points={POOL_CRASH: 3})
        runner = make_runner(faults=plan)
        runner.run()
        assert_matches_baseline(runner, baseline)
        assert runner.stats.crashes == 1
        assert runner.stats.reassignments >= 1
        assert runner.queue.task(3).attempts == 2

    def test_hard_kill_rebuilds_pool(self, baseline):
        plan = FaultPlan(crash_points={POOL_KILL: 2})
        runner = make_runner(faults=plan)
        runner.run()
        assert_matches_baseline(runner, baseline)
        assert runner.stats.pool_rebuilds >= 1
        assert runner.stats.reassignments >= 1

    def test_duplicate_delivery_deduped(self, baseline):
        plan = FaultPlan(duplicate_completions={POOL_CRASH: 5})
        runner = make_runner(faults=plan)
        runner.run()
        assert_matches_baseline(runner, baseline)
        assert runner.stats.duplicate_deliveries == 1


class TestKillAndResume:
    def test_kill_checkpoint_resume_equals_clean_run(self, tmp_path, baseline):
        """The acceptance scenario end to end: a campaign survives a
        killed worker process, checkpoints mid-flight, is torn down,
        and a fresh resumed runner finishes to the identical record
        without recomputing checkpointed chunks."""
        path = str(tmp_path / "campaign.json")
        plan = FaultPlan(crash_points={POOL_KILL: 1})
        first = make_runner(
            faults=plan, checkpoint_path=path, checkpoint_every=1
        )
        first.run(stop_after=6)  # mid-flight shutdown, checkpoint written
        assert first.stats.pool_rebuilds >= 1  # the kill really happened
        assert 0 < first.stats.completions < len(first.queue)

        resumed = make_runner(checkpoint_path=path)
        skipped = resumed.resume()
        assert skipped >= first.stats.completions - 1  # last ckpt may lag by <every
        assert skipped > 0
        resumed.run()
        assert_matches_baseline(resumed, baseline)

        clean = make_runner(processes=1)
        clean.run()
        assert resumed.campaign == clean.campaign

    def test_resume_skips_without_recompute(self, tmp_path, baseline):
        path = str(tmp_path / "campaign.json")
        full = make_runner(checkpoint_path=path, checkpoint_every=1)
        full.run()
        assert_matches_baseline(full, baseline)

        resumed = make_runner(checkpoint_path=path)
        assert resumed.resume() == len(resumed.queue)
        resumed.run()
        assert resumed.stats.completions == 0  # nothing recomputed
        assert_matches_baseline(resumed, baseline)

    def test_resume_rejects_foreign_checkpoint(self, tmp_path):
        path = str(tmp_path / "campaign.json")
        make_runner(checkpoint_path=path).save_checkpoint()
        other_cfg = SearchConfig(width=9, target_hd=4,
                                 filter_lengths=(16, 40, 100),
                                 confirm_weights=False)
        foreign = ParallelCoordinator(
            config=other_cfg, chunk_size=8, processes=1, checkpoint_path=path
        )
        with pytest.raises(CheckpointMismatch, match="width"):
            foreign.resume()

    def test_resume_rejects_partition_mismatch(self, tmp_path):
        path = str(tmp_path / "campaign.json")
        make_runner(chunk_size=8, checkpoint_path=path).save_checkpoint()
        repartitioned = make_runner(chunk_size=64, checkpoint_path=path)
        with pytest.raises(CheckpointMismatch, match="chunk_size"):
            repartitioned.resume()


class TestProgress:
    def test_summary_lines_emitted(self, baseline):
        lines: list[str] = []
        runner = make_runner(log=lines.append, progress_interval=0.0)
        runner.run()
        assert lines, "no progress output"
        assert "chunks" in lines[-1]
        assert "complete" in lines[-1]
