"""Progress tracking and ETA tests."""

from __future__ import annotations

import pytest

from repro.dist.progress import ProgressTracker, campaign_on_track


class TestTracker:
    def test_no_rate_before_two_samples(self):
        t = ProgressTracker(total_chunks=100)
        assert t.rate is None and t.eta(0.0) is None
        t.observe(0.0, 0)
        assert t.rate is None

    def test_constant_rate_eta(self):
        t = ProgressTracker(total_chunks=100)
        for i in range(11):
            t.observe(i * 10.0, i)  # 1 chunk / 10 s
        assert t.rate == pytest.approx(0.1)
        assert t.eta(100.0) == pytest.approx(900.0)  # 90 left at 0.1/s

    def test_eta_zero_when_done(self):
        t = ProgressTracker(total_chunks=5)
        t.observe(0.0, 0)
        t.observe(10.0, 5)
        assert t.eta(10.0) == 0.0

    def test_window_adapts_to_speedup(self):
        t = ProgressTracker(total_chunks=1000, window=4)
        # slow phase
        for i in range(5):
            t.observe(i * 100.0, i)
        # fast phase: the small window forgets the slow past
        base = t.done
        for j in range(1, 5):
            t.observe(400.0 + j, base + j * 10)
        assert t.rate > 1.0

    def test_regress_rejected(self):
        t = ProgressTracker(total_chunks=10)
        t.observe(1.0, 3)
        with pytest.raises(ValueError):
            t.observe(2.0, 2)
        with pytest.raises(ValueError):
            t.observe(0.5, 4)

    def test_summary(self):
        t = ProgressTracker(total_chunks=10)
        t.observe(0.0, 0)
        t.observe(86_400.0, 5)
        s = t.summary(86_400.0)
        assert "5/10" in s and "50.0%" in s and "1.0 days" in s

    def test_interval_brackets_point(self):
        t = ProgressTracker(total_chunks=100)
        t.observe(0.0, 0)
        t.observe(10.0, 10)
        lo, hi = t.eta_interval(10.0)
        assert lo < t.eta(10.0) < hi


class TestOnTrack:
    def test_on_track_logic(self):
        t = ProgressTracker(total_chunks=100)
        t.observe(0.0, 0)
        t.observe(10.0, 10)  # 1/s -> 90s remaining
        assert campaign_on_track(t, 10.0, deadline=150.0) is True
        assert campaign_on_track(t, 10.0, deadline=50.0) is False

    def test_unknown_before_rate(self):
        t = ProgressTracker(total_chunks=100)
        assert campaign_on_track(t, 0.0, 100.0) is None

    def test_paper_scale_scenario(self):
        # the 2001 campaign: ~1024 chunks over ~96 days; halfway in,
        # the tracker should predict roughly the remaining half
        t = ProgressTracker(total_chunks=1024, window=64)
        day = 86_400.0
        for d in range(49):
            t.observe(d * day, int(d * 1024 / 96))
        eta = t.eta(48 * day)
        assert 40 * day < eta < 60 * day