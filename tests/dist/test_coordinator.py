"""End-to-end campaign tests: fault tolerance and checkpointing.

The governing invariant: whatever the fault plan, the finished
campaign's results are identical to a clean single-threaded run --
no lost chunks, no double counting.
"""

from __future__ import annotations

import pytest

from repro.dist.coordinator import Coordinator
from repro.dist.faults import FaultPlan
from repro.dist.worker import ChunkWorker
from repro.search.exhaustive import SearchConfig, search_all

CFG = SearchConfig(width=6, target_hd=4, filter_lengths=(8, 20), confirm_weights=False)


@pytest.fixture(scope="module")
def clean_baseline():
    res = search_all(CFG)
    return {r.poly: r.survived for r in res.records}, res.examined


def run_campaign(fault_plan: FaultPlan, n_workers: int = 3, chunk_size: int = 4):
    coord = Coordinator(config=CFG, chunk_size=chunk_size, lease_duration=2.0)
    workers = [
        ChunkWorker(f"w{i}", CFG, faults=fault_plan) for i in range(n_workers)
    ]
    coord.run(workers)
    return coord


class TestCleanRun:
    def test_matches_direct_search(self, clean_baseline):
        truth, examined = clean_baseline
        coord = run_campaign(FaultPlan())
        assert coord.campaign.candidates_examined == examined
        assert {r.poly: r.survived for r in coord.campaign.results.values()} == truth
        assert coord.duplicate_deliveries == 0


class TestFaultTolerance:
    def test_crash_recovery(self, clean_baseline):
        truth, examined = clean_baseline
        coord = run_campaign(FaultPlan(crash_points={"w0": 0, "w1": 2}))
        assert coord.campaign.candidates_examined == examined
        assert {r.poly: r.survived for r in coord.campaign.results.values()} == truth
        assert coord.reassignments >= 1

    def test_duplicate_deliveries_deduped(self, clean_baseline):
        truth, examined = clean_baseline
        coord = run_campaign(FaultPlan(duplicate_completions={"w0": 0, "w2": 1}))
        assert coord.campaign.candidates_examined == examined
        assert coord.duplicate_deliveries >= 1
        assert {r.poly: r.survived for r in coord.campaign.results.values()} == truth

    def test_all_workers_dead_raises(self):
        coord = Coordinator(config=CFG, chunk_size=4, lease_duration=2.0)
        plan = FaultPlan(crash_points={"w0": 0})
        with pytest.raises(RuntimeError, match="all workers dead"):
            coord.run([ChunkWorker("w0", CFG, faults=plan)])

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_random_fault_soak(self, seed, clean_baseline):
        truth, examined = clean_baseline
        ids = [f"w{i}" for i in range(4)]
        plan = FaultPlan.random_plan(ids, seed=seed)
        # keep at least one worker alive
        plan.crash_points.pop("w0", None)
        coord = Coordinator(config=CFG, chunk_size=4, lease_duration=2.0)
        coord.run([ChunkWorker(w, CFG, faults=plan) for w in ids])
        assert coord.campaign.candidates_examined == examined
        assert {r.poly: r.survived for r in coord.campaign.results.values()} == truth


class TestCheckpoint:
    def test_roundtrip_and_resume(self, tmp_path, clean_baseline):
        truth, examined = clean_baseline
        # First campaign runs halfway (simulate by chunking and merging
        # only some chunks), checkpoints, then a fresh coordinator
        # resumes and finishes.
        coord = Coordinator(config=CFG, chunk_size=4, lease_duration=2.0)
        from repro.search.exhaustive import search_chunk

        for chunk_id in (0, 1, 2):
            task = coord.queue.task(chunk_id)
            res = search_chunk(CFG, task.start_index, task.end_index)
            coord.queue.complete(chunk_id, "w0", 1.0)
            coord.deliver(task, res, "w0")
        path = str(tmp_path / "campaign.json")
        coord.save_checkpoint(path)

        resumed = Coordinator(config=CFG, chunk_size=4, lease_duration=2.0)
        skipped = resumed.load_checkpoint(path)
        assert skipped == 3
        resumed.run([ChunkWorker("w1", CFG)])
        assert resumed.campaign.candidates_examined == examined
        assert {
            r.poly: r.survived for r in resumed.campaign.results.values()
        } == truth
