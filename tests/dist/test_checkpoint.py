"""Checkpoint-compatibility guarding (the confirmed seed bug: a
width-8/chunk-8 checkpoint loaded cleanly into a width-9/chunk-64
coordinator with 0 chunks skipped and no error)."""

from __future__ import annotations

import json

import pytest

from repro.dist import checkpoint as checkpoint_io
from repro.dist.checkpoint import CheckpointMismatch
from repro.dist.coordinator import Coordinator
from repro.search.exhaustive import SearchConfig

CFG = SearchConfig(width=8, target_hd=4, filter_lengths=(16, 40),
                   confirm_weights=False)


def write_checkpoint(tmp_path, config=CFG, chunk_size=8):
    coord = Coordinator(config=config, chunk_size=chunk_size)
    path = str(tmp_path / "campaign.json")
    coord.save_checkpoint(path)
    return path


def test_same_campaign_round_trips(tmp_path):
    path = write_checkpoint(tmp_path)
    coord = Coordinator(config=CFG, chunk_size=8)
    assert coord.load_checkpoint(path) == 0  # nothing done yet, no error


def test_identity_recorded_in_envelope(tmp_path):
    path = write_checkpoint(tmp_path)
    d = json.loads(open(path).read())
    assert d["format"] == checkpoint_io.FORMAT
    assert d["config"] == {
        "width": 8, "target_hd": 4, "final_length": 40, "chunk_size": 8,
    }


@pytest.mark.parametrize(
    "other,label",
    [
        (dict(width=9), "width"),
        (dict(target_hd=5), "target_hd"),
        (dict(filter_lengths=(16, 48)), "final_length"),
    ],
)
def test_config_mismatch_raises(tmp_path, other, label):
    path = write_checkpoint(tmp_path)
    params = dict(width=8, target_hd=4, filter_lengths=(16, 40),
                  confirm_weights=False)
    params.update(other)
    coord = Coordinator(config=SearchConfig(**params), chunk_size=8)
    with pytest.raises(CheckpointMismatch, match=label):
        coord.load_checkpoint(path)


def test_chunk_size_mismatch_raises(tmp_path):
    path = write_checkpoint(tmp_path, chunk_size=8)
    coord = Coordinator(config=CFG, chunk_size=64)
    with pytest.raises(CheckpointMismatch, match="chunk_size"):
        coord.load_checkpoint(path)


def test_seed_bug_scenario_now_raises(tmp_path):
    """The exact confirmed bug: width-8/chunk-8 checkpoint into a
    width-9/chunk-64 coordinator used to 'succeed' with 0 skipped."""
    path = write_checkpoint(tmp_path, config=CFG, chunk_size=8)
    other = SearchConfig(width=9, target_hd=4, filter_lengths=(16, 40),
                         confirm_weights=False)
    coord = Coordinator(config=other, chunk_size=64)
    with pytest.raises(CheckpointMismatch):
        coord.load_checkpoint(path)


def test_legacy_bare_record_still_loads(tmp_path):
    """Format-1 files (bare CampaignRecord JSON) load when compatible
    and are refused when the record's own identity disagrees."""
    coord = Coordinator(config=CFG, chunk_size=8)
    path = str(tmp_path / "legacy.json")
    with open(path, "w") as f:
        f.write(coord.campaign.to_json())
    assert Coordinator(config=CFG, chunk_size=8).load_checkpoint(path) == 0

    other = SearchConfig(width=9, target_hd=4, filter_lengths=(16, 40),
                         confirm_weights=False)
    with pytest.raises(CheckpointMismatch, match="width"):
        Coordinator(config=other, chunk_size=8).load_checkpoint(path)


def test_out_of_partition_chunk_ids_raise(tmp_path):
    """Even a hand-edited envelope cannot smuggle chunk ids outside
    the current partition into the queue."""
    src = Coordinator(config=CFG, chunk_size=8)
    src.campaign.chunks_done.add(999)
    path = str(tmp_path / "edited.json")
    src.save_checkpoint(path)
    coord = Coordinator(config=CFG, chunk_size=8)
    with pytest.raises(CheckpointMismatch, match="999"):
        coord.load_checkpoint(path)
