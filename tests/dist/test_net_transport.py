"""The transport layer under the work protocol.

All three implementations answer to one contract -- ``send`` raises
:class:`ConnectionLost` when the peer is gone, ``recv`` returns the
parsed frame, ``None`` on clean close *or* a frame truncated by
disconnection, and :class:`FrameError` on violations -- so the
coordinator and workers never know which wire they are on.  The
fault wrapper's injections (sever, drop, duplicate, delay) are
scripted by a :class:`FaultPlan` and keyed on per-worker state that
survives reconnects, which is what makes the chaos gauntlet
deterministic.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.dist.faults import FaultPlan
from repro.dist.transport import (
    ConnectionLost,
    FaultyTransport,
    LoopbackTransport,
    TcpTransport,
)
from repro.net_common import MAX_LINE, FrameError


async def echo_handler(conn):
    """Echoes every frame back with an ``echo`` marker."""
    while True:
        frame = await conn.recv()
        if frame is None:
            break
        await conn.send({"echo": frame})
    await conn.close()


class TestTcpTransport:
    def test_round_trip_and_clean_close(self):
        async def scenario():
            transport = TcpTransport(quiet=True)
            address = await transport.listen(echo_handler)
            conn = await transport.connect(address, label="w0")
            await conn.send({"op": "hello", "n": 1})
            reply = await conn.recv()
            await conn.close()
            await transport.close()
            return address, reply

        address, reply = asyncio.run(scenario())
        host, _, port = address.rpartition(":")
        assert host == "127.0.0.1" and int(port) > 0
        assert reply == {"echo": {"op": "hello", "n": 1}}

    def test_connect_to_nobody_raises_connection_lost(self):
        async def scenario():
            transport = TcpTransport(quiet=True)
            address = await transport.listen(echo_handler)
            await transport.close()
            with pytest.raises(ConnectionLost):
                await transport.connect(address)

        asyncio.run(scenario())

    def test_malformed_address_is_a_value_error(self):
        async def scenario():
            with pytest.raises(ValueError, match="host:port"):
                await TcpTransport(quiet=True).connect("not-an-address")

        asyncio.run(scenario())

    def test_server_sees_peer_disconnect_as_none(self):
        got = []

        async def handler(conn):
            got.append(await conn.recv())
            got.append(await conn.recv())

        async def scenario():
            transport = TcpTransport(quiet=True)
            address = await transport.listen(handler)
            conn = await transport.connect(address)
            await conn.send({"x": 1})
            await conn.close()
            for _ in range(100):
                if len(got) == 2:
                    break
                await asyncio.sleep(0.01)
            await transport.close()

        asyncio.run(scenario())
        assert got == [{"x": 1}, None]


class TestLoopbackTransport:
    def test_round_trip(self):
        async def scenario():
            transport = LoopbackTransport()
            await transport.listen(echo_handler)
            conn = await transport.connect(label="w0")
            await conn.send({"seq": 1})
            reply = await conn.recv()
            await conn.close()
            await transport.close()
            return reply

        assert asyncio.run(scenario()) == {"echo": {"seq": 1}}

    def test_connect_without_listener_raises(self):
        async def scenario():
            with pytest.raises(ConnectionLost):
                await LoopbackTransport().connect()

        asyncio.run(scenario())

    def test_send_after_close_raises_connection_lost(self):
        async def scenario():
            transport = LoopbackTransport()
            await transport.listen(echo_handler)
            conn = await transport.connect()
            await conn.close()
            with pytest.raises(ConnectionLost):
                await conn.send({"late": True})
            await transport.close()

        asyncio.run(scenario())

    def test_garbage_bytes_surface_as_frame_error(self):
        errors = []

        async def handler(conn):
            try:
                await conn.recv()
            except FrameError as exc:
                errors.append(exc)
            await conn.close()

        async def scenario():
            transport = LoopbackTransport()
            await transport.listen(handler)
            conn = await transport.connect()
            conn.send_raw(b"{not json at all\n")
            await asyncio.sleep(0.01)
            await transport.close()

        asyncio.run(scenario())
        assert [e.code for e in errors] == ["bad-json"]
        assert errors[0].recoverable

    def test_truncated_frame_reads_as_close(self):
        got = []

        async def handler(conn):
            got.append(await conn.recv())

        async def scenario():
            transport = LoopbackTransport()
            await transport.listen(handler)
            conn = await transport.connect()
            conn.send_raw(b'{"op": "hel')  # no newline: died mid-write
            await asyncio.sleep(0.01)
            await transport.close()

        asyncio.run(scenario())
        assert got == [None]

    def test_oversized_frame_is_unrecoverable(self):
        errors = []

        async def handler(conn):
            try:
                await conn.recv()
            except FrameError as exc:
                errors.append(exc)
            await conn.close()

        async def scenario():
            transport = LoopbackTransport()
            await transport.listen(handler)
            conn = await transport.connect()
            conn.send_raw(b"x" * (MAX_LINE + 1) + b"\n")
            await asyncio.sleep(0.01)
            await transport.close()

        asyncio.run(scenario())
        assert [e.code for e in errors] == ["oversized-frame"]
        assert not errors[0].recoverable


def complete(n):
    return {"op": "complete", "chunk": n}


class TestFaultyTransport:
    def run_with_echo(self, plan, script):
        """Run ``script(transport)`` against an echo server behind a
        fault wrapper."""

        async def scenario():
            transport = FaultyTransport(LoopbackTransport(), plan)
            await transport.listen(echo_handler)
            try:
                return await script(transport)
            finally:
                await transport.close()

        return asyncio.run(scenario())

    def test_sever_cuts_first_connection_only(self):
        plan = FaultPlan(net_sever_after={"w0": 1})

        async def script(transport):
            conn = await transport.connect(label="w0")
            await conn.send({"n": 0})  # frame 0: fine
            with pytest.raises(ConnectionLost, match="sever"):
                await conn.send({"n": 1})  # frame 1: severed
            retry = await transport.connect(label="w0")
            await retry.send({"n": 2})  # reconnects are left alone
            return await retry.recv()

        assert self.run_with_echo(plan, script) == {"echo": {"n": 2}}

    def test_unlabelled_connections_are_untouched(self):
        plan = FaultPlan(net_sever_after={"w0": 0})

        async def script(transport):
            conn = await transport.connect(label="w1")
            for n in range(4):
                await conn.send({"n": n})
            return await conn.recv()

        assert self.run_with_echo(plan, script) == {"echo": {"n": 0}}

    def test_dropped_complete_never_arrives(self):
        plan = FaultPlan(net_drop_complete={"w0": {0}})

        async def script(transport):
            conn = await transport.connect(label="w0")
            await conn.send(complete(7))  # ordinal 0: dropped
            await conn.send(complete(8))  # ordinal 1: delivered
            return await conn.recv()

        assert self.run_with_echo(plan, script) == {"echo": complete(8)}

    def test_duplicated_complete_arrives_twice(self):
        plan = FaultPlan(net_duplicate_complete={"w0": {0}})

        async def script(transport):
            conn = await transport.connect(label="w0")
            await conn.send(complete(7))
            return [await conn.recv(), await conn.recv()]

        assert self.run_with_echo(plan, script) == [
            {"echo": complete(7)},
            {"echo": complete(7)},
        ]

    def test_complete_ordinals_persist_across_reconnects(self):
        # Ordinal 1 is the *second* complete this worker ever sends,
        # even when a reconnect happens in between -- exactly how the
        # chaos plan chains "drop the first" into "duplicate the
        # resend".
        plan = FaultPlan(net_duplicate_complete={"w0": {1}})

        async def script(transport):
            first = await transport.connect(label="w0")
            await first.send(complete(1))  # ordinal 0
            got = [await first.recv()]
            await first.close()
            second = await transport.connect(label="w0")
            await second.send(complete(2))  # ordinal 1: duplicated
            got.append(await second.recv())
            got.append(await second.recv())
            return got

        assert self.run_with_echo(plan, script) == [
            {"echo": complete(1)},
            {"echo": complete(2)},
            {"echo": complete(2)},
        ]

    def test_non_complete_frames_are_never_dropped(self):
        plan = FaultPlan(net_drop_complete={"w0": {0}})

        async def script(transport):
            conn = await transport.connect(label="w0")
            await conn.send({"op": "lease"})
            return await conn.recv()

        assert self.run_with_echo(plan, script) == {
            "echo": {"op": "lease"}
        }
