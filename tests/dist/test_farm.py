"""Virtual-time farm simulation tests, pinned to the paper's §4.2
campaign arithmetic."""

from __future__ import annotations

import math

import pytest

from repro.dist.farm import (
    CampaignEstimate,
    FarmSpec,
    MachineSpec,
    _advance_through_duty,
    brute_force_years,
    castagnoli_hardware_years,
    paper_campaign_estimate,
    simulate_campaign,
)


class TestDutyCycleAdvance:
    CONT = MachineSpec("c", 1, 1.0)
    HALF = MachineSpec("h", 1, 1.0, duty_on=10.0, duty_off=10.0)

    def test_continuous(self):
        assert _advance_through_duty(5.0, 100.0, self.CONT, 0.0) == 105.0

    def test_half_duty_long_run(self):
        # 100 compute seconds at 50% duty ~ 190-210 wall seconds
        end = _advance_through_duty(0.0, 100.0, self.HALF, 0.0)
        assert 185.0 <= end <= 215.0

    def test_within_first_window(self):
        assert _advance_through_duty(0.0, 5.0, self.HALF, 0.0) == 5.0

    def test_starts_in_off_window(self):
        # phase puts t=0 at the start of an off window: sleep 10 then work
        end = _advance_through_duty(10.0, 5.0, self.HALF, 0.0)
        assert end == 25.0


class TestSimulation:
    def test_single_machine_exact(self):
        farm = FarmSpec(machines=(MachineSpec("m", 1, 10.0),))
        est = simulate_campaign(farm, 1000, chunk_candidates=100)
        assert est.wall_seconds == pytest.approx(100.0)
        assert est.cpu_seconds == pytest.approx(100.0)
        assert est.chunks == 10

    def test_two_machines_halve_wall_clock(self):
        one = simulate_campaign(FarmSpec((MachineSpec("m", 1, 10.0),)), 10_000, chunk_candidates=100)
        two = simulate_campaign(FarmSpec((MachineSpec("m", 2, 10.0),)), 10_000, chunk_candidates=100)
        assert two.wall_seconds == pytest.approx(one.wall_seconds / 2, rel=0.02)
        assert two.cpu_seconds == pytest.approx(one.cpu_seconds)

    def test_deterministic(self):
        farm = FarmSpec.paper_fleet()
        a = simulate_campaign(farm, 10**7)
        b = simulate_campaign(farm, 10**7)
        assert a.wall_seconds == b.wall_seconds

    def test_heterogeneous_rates_share_proportionally(self):
        farm = FarmSpec((MachineSpec("fast", 1, 30.0), MachineSpec("slow", 1, 10.0)))
        est = simulate_campaign(farm, 40_000, chunk_candidates=1000)
        assert est.per_machine_chunks["fast"] > est.per_machine_chunks["slow"]


class TestPaperArithmetic:
    def test_campaign_lands_on_one_summer(self):
        # "late May to early September" ~ 3 to 4.5 months
        est = paper_campaign_estimate()
        assert 2.5 <= est.wall_months <= 4.5
        assert est.total_candidates == 1_073_774_592

    def test_cpu_years_magnitude(self):
        # 2^30 polys at ~2/s ~ 17 CPU-years
        est = paper_campaign_estimate()
        assert 15 <= est.cpu_seconds / 3.156e7 <= 20

    def test_castagnoli_hardware_exceeds_3600_years(self):
        assert castagnoli_hardware_years() > 3600

    def test_brute_force_151_million_years(self):
        assert brute_force_years() == pytest.approx(151e6, rel=0.01)

    def test_summary_is_informative(self):
        est = paper_campaign_estimate()
        s = est.summary()
        assert "months" in s and "CPU-years" in s


class TestSpecValidation:
    def test_bad_count(self):
        with pytest.raises(ValueError):
            MachineSpec("m", 0, 1.0)

    def test_bad_duty(self):
        with pytest.raises(ValueError):
            MachineSpec("m", 1, 1.0, duty_on=0.0)

    def test_availability(self):
        assert MachineSpec("m", 1, 1.0).availability == 1.0
        assert MachineSpec("m", 1, 1.0, duty_on=1.0, duty_off=3.0).availability == 0.25
