"""Protocol robustness for the ``repro-work/1`` coordinator.

These tests drive :meth:`WorkServer._handle_connection` directly over
a loopback wire -- no serve loop, no client library -- so every frame
is hand-built and every abuse case (malformed JSON, truncated and
oversized frames, unknown verbs, version skew, out-of-order ops,
stale leases) can be pinned to its coded error.  The standing rule:
the coordinator answers with an error frame or closes the connection;
it NEVER raises out of dispatch, whatever arrives on the wire.
"""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist.net import PROTOCOL, WorkServer, result_to_wire
from repro.dist.transport import LoopbackTransport
from repro.search.exhaustive import SearchConfig, search_chunk

CFG = SearchConfig(width=8, target_hd=4, filter_lengths=(16, 40, 100),
                   confirm_weights=False)
CHUNK_SIZE = 16


def make_server(**kwargs) -> WorkServer:
    kwargs.setdefault("lease_duration", 5.0)
    kwargs.setdefault("handle_signals", False)
    return WorkServer(CFG, CHUNK_SIZE, LoopbackTransport(), **kwargs)


def hello(worker="w0", protocol=PROTOCOL, seq=0):
    return {"op": "hello", "protocol": protocol, "worker": worker,
            "host": "testhost", "seq": seq}


def session(script, **server_kwargs):
    """Run ``script(server, conn)`` against a listening coordinator
    with no serve loop: the protocol surface in isolation."""

    async def scenario():
        server = make_server(**server_kwargs)
        await server.transport.listen(server._handle_connection)
        conn = await server.transport.connect(label="test")
        try:
            return await script(server, conn)
        finally:
            await server.transport.close()

    return asyncio.run(scenario())


async def ask(conn, frame):
    await conn.send(frame)
    return await conn.recv()


def error_code(reply):
    assert reply["ok"] is False
    return reply["error"]["code"]


def wire_result(chunk_id: int) -> dict:
    start = chunk_id * CHUNK_SIZE
    return result_to_wire(search_chunk(CFG, start, start + CHUNK_SIZE))


class TestHandshake:
    def test_hello_reply_carries_the_campaign_brief(self):
        async def script(server, conn):
            return await ask(conn, hello(seq=17))

        reply = session(script)
        assert reply["ok"] and reply["op"] == "hello"
        assert reply["seq"] == 17
        assert reply["protocol"] == PROTOCOL
        assert reply["chunk_size"] == CHUNK_SIZE
        assert reply["config"]["width"] == CFG.width
        assert reply["lease"] == 5.0

    def test_version_mismatch_is_coded_and_closes(self):
        async def script(server, conn):
            reply = await ask(conn, hello(protocol="repro-work/99"))
            return reply, await conn.recv()

        reply, after = session(script)
        assert error_code(reply) == "version-mismatch"
        assert after is None  # coordinator hung up

    def test_op_before_hello_is_refused_but_survivable(self):
        async def script(server, conn):
            refused = await ask(conn, {"op": "lease", "seq": 1})
            greeted = await ask(conn, hello(seq=2))
            leased = await ask(conn, {"op": "lease", "seq": 3})
            return refused, greeted, leased

        refused, greeted, leased = session(script)
        assert error_code(refused) == "no-hello"
        assert greeted["ok"]
        assert leased["ok"] and "chunk" in leased

    def test_hello_without_worker_id_is_bad_field(self):
        async def script(server, conn):
            frame = hello()
            del frame["worker"]
            return await ask(conn, frame)

        assert error_code(session(script)) == "bad-field"


class TestMalformedFrames:
    def test_bad_json_gets_coded_reply_and_connection_survives(self):
        async def script(server, conn):
            conn.send_raw(b"{definitely not json\n")
            garbled = await conn.recv()
            greeted = await ask(conn, hello())
            return server.stats.frame_errors, garbled, greeted

        frame_errors, garbled, greeted = session(script)
        assert frame_errors == 1
        assert error_code(garbled) == "bad-json"
        assert greeted["ok"]

    def test_oversized_frame_is_coded_and_closes(self):
        async def script(server, conn):
            from repro.net_common import MAX_LINE

            conn.send_raw(b'{"op":"' + b"x" * MAX_LINE + b'"}\n')
            reply = await conn.recv()
            return reply, await conn.recv()

        reply, after = session(script)
        assert error_code(reply) == "oversized-frame"
        assert after is None

    def test_mid_frame_disconnect_does_not_crash_the_server(self):
        async def script(server, conn):
            conn.send_raw(b'{"op": "hel')  # died mid-write
            await asyncio.sleep(0.01)
            # A fresh connection still gets full service.
            conn2 = await server.transport.connect(label="test2")
            reply = await ask(conn2, hello(worker="w1"))
            await conn2.close()
            return reply

        assert session(script)["ok"]

    def test_non_object_frames_are_bad_frame(self):
        # (A bare JSON ``null`` is not here: it decodes to None, which
        # is the close sentinel, so the coordinator reads it as EOF.)
        async def script(server, conn):
            replies = []
            for frame in ([1, 2, 3], "lease", 17, True, 2.5):
                replies.append(await ask(conn, frame))
            return replies

        for reply in session(script):
            assert error_code(reply) == "bad-frame"

    def test_missing_or_non_string_op_is_bad_frame(self):
        async def script(server, conn):
            return (
                await ask(conn, {"seq": 1}),
                await ask(conn, {"op": 7, "seq": 2}),
            )

        for reply in session(script):
            assert error_code(reply) == "bad-frame"

    def test_unknown_op_names_the_known_ones_and_survives(self):
        async def script(server, conn):
            await ask(conn, hello())
            refused = await ask(conn, {"op": "gimme", "seq": 5})
            leased = await ask(conn, {"op": "lease", "seq": 6})
            return refused, leased

        refused, leased = session(script)
        assert error_code(refused) == "unknown-op"
        assert "lease" in refused["error"]["message"]
        assert refused["seq"] == 5
        assert leased["ok"]


class TestBadFields:
    def test_renew_rejects_missing_bool_and_unknown_chunks(self):
        async def script(server, conn):
            await ask(conn, hello())
            return (
                await ask(conn, {"op": "renew"}),
                await ask(conn, {"op": "renew", "chunk": True}),
                await ask(conn, {"op": "renew", "chunk": "3"}),
                await ask(conn, {"op": "renew", "chunk": 10**9}),
            )

        for reply in session(script):
            assert error_code(reply) == "bad-field"

    def test_complete_with_undecodable_result_is_bad_field(self):
        async def script(server, conn):
            await ask(conn, hello())
            lease = await ask(conn, {"op": "lease"})
            chunk = lease["chunk"]
            bad = [
                {"op": "complete", "chunk": chunk},  # no result at all
                {"op": "complete", "chunk": chunk, "result": "zap"},
                {"op": "complete", "chunk": chunk,
                 "result": {"records": 3, "examined": 1}},
                {"op": "complete", "chunk": chunk,
                 "result": {"records": [], "examined": "many",
                            "stage_kills": {}, "elapsed": 0.0}},
            ]
            return [await ask(conn, frame) for frame in bad]

        for reply in session(script):
            assert error_code(reply) == "bad-field"

    def test_bad_field_leaves_the_lease_intact(self):
        async def script(server, conn):
            await ask(conn, hello())
            lease = await ask(conn, {"op": "lease"})
            chunk = lease["chunk"]
            await ask(conn, {"op": "complete", "chunk": chunk,
                             "result": "zap"})  # rejected
            good = await ask(conn, {"op": "complete", "chunk": chunk,
                                    "result": wire_result(chunk)})
            return good

        good = session(script)
        assert good["ok"] and good["merged"] is True


class TestLeaseLifecycle:
    def test_duplicate_complete_is_idempotent(self):
        async def script(server, conn):
            await ask(conn, hello())
            lease = await ask(conn, {"op": "lease"})
            chunk = lease["chunk"]
            frame = {"op": "complete", "chunk": chunk,
                     "result": wire_result(chunk)}
            first = await ask(conn, frame)
            second = await ask(conn, frame)
            return first, second, server

        first, second, server = session(script)
        assert first["merged"] is True
        assert second["ok"] and second["merged"] is False
        assert server.stats.completions == 1
        assert server.stats.duplicate_deliveries == 1
        assert server.campaign.candidates_examined == CHUNK_SIZE

    def test_renew_after_expiry_reports_the_lost_lease(self):
        async def script(server, conn):
            await ask(conn, hello())
            lease = await ask(conn, {"op": "lease"})
            chunk, epoch = lease["chunk"], lease["epoch"]
            # The reaper fires long after the lease ran out.
            server.queue.reclaim(server.clock() + 60.0)
            reply = await ask(
                conn, {"op": "renew", "chunk": chunk, "epoch": epoch}
            )
            return reply, server

        reply, server = session(script, lease_duration=0.01)
        assert reply["ok"] and reply["renewed"] is False
        assert reply["lost"] is True
        assert server.stats.lease_expiries == 1
        assert server.workers["w0"].lease_losses == 1

    def test_renew_with_stale_epoch_reports_lost(self):
        async def script(server, conn):
            await ask(conn, hello())
            lease = await ask(conn, {"op": "lease"})
            reply = await ask(conn, {
                "op": "renew", "chunk": lease["chunk"],
                "epoch": lease["epoch"] + 1,
            })
            return reply

        reply = session(script)
        assert reply["renewed"] is False and reply["lost"] is True
        assert "epoch" in reply["reason"]

    def test_renew_by_the_wrong_worker_reports_lost(self):
        async def script(server, conn):
            await ask(conn, hello(worker="owner"))
            lease = await ask(conn, {"op": "lease"})
            thief = await server.transport.connect(label="thief")
            await ask(thief, hello(worker="thief"))
            reply = await ask(
                thief, {"op": "renew", "chunk": lease["chunk"]}
            )
            await thief.close()
            return reply

        reply = session(script)
        assert reply["renewed"] is False and reply["lost"] is True

    def test_lease_when_everything_is_taken_says_idle(self):
        async def script(server, conn):
            await ask(conn, hello())
            grants = []
            while True:
                reply = await ask(conn, {"op": "lease"})
                if "chunk" not in reply:
                    break
                grants.append(reply["chunk"])
            return grants, reply

        grants, last = session(script)
        assert sorted(grants) == list(range(len(grants)))
        assert last["idle"] is True and last["retry_in"] > 0

    def test_bye_is_acknowledged_and_closes(self):
        async def script(server, conn):
            await ask(conn, hello())
            reply = await ask(conn, {"op": "bye", "seq": 9})
            return reply, await conn.recv()

        reply, after = session(script)
        assert reply["ok"] and reply["seq"] == 9
        assert after is None


# Any JSON value whatsoever, plus dict shapes that get close to real
# requests (right op names, wrong field types).
any_json = st.recursive(
    st.none() | st.booleans()
    | st.integers(min_value=-(2**53), max_value=2**53)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=20),
    lambda kids: st.lists(kids, max_size=3)
    | st.dictionaries(st.text(max_size=8), kids, max_size=4),
    max_leaves=12,
)
near_miss = st.fixed_dictionaries(
    {"op": st.sampled_from(
        ["hello", "lease", "renew", "complete", "snapshot", "bye", "HELLO", ""]
    )},
    optional={
        "seq": any_json,
        "worker": any_json,
        "protocol": any_json,
        "chunk": any_json,
        "epoch": any_json,
        "result": any_json,
        "obs": any_json,
    },
)


class TestDispatchFuzz:
    @given(req=any_json | near_miss)
    @settings(max_examples=150, deadline=None)
    def test_dispatch_never_raises_before_hello(self, req):
        server = make_server()
        reply, close, worker = server._dispatch(req, None)
        assert isinstance(reply, dict)
        assert isinstance(close, bool)
        if reply.get("ok") is False:
            assert isinstance(reply["error"]["code"], str)

    @given(req=near_miss)
    @settings(max_examples=150, deadline=None)
    def test_dispatch_never_raises_after_hello(self, req):
        server = make_server()
        _, _, worker = server._dispatch(hello(), None)
        assert worker == "w0"
        reply, close, _ = server._dispatch(req, worker)
        assert isinstance(reply, dict)
        assert isinstance(close, bool)
        if reply.get("ok") is False:
            assert isinstance(reply["error"]["code"], str)
        # However mangled the request, the queue stays coherent.
        assert server.queue.done + server.queue.pending + \
            server.queue.leased + server.queue.quarantined == len(server.queue)
