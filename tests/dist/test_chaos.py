"""Chaos-harness building blocks: fault-plan determinism, identical
same-seed campaigns, quarantine, graceful drain, and corrupt-resume.

The property the survival kit rests on: a seeded fault schedule is a
*value*, not a dice roll.  Two campaigns under the same plan make the
same scheduling decisions, emit the same event sequence (modulo
timestamps), and converge on the same record -- which is what lets
``tools/chaos_campaign.py`` assert bit-identical output after a kill,
a corruption, and a resume.
"""

from __future__ import annotations

import dataclasses
import os
import signal

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist.checkpoint import previous_path
from repro.dist.coordinator import Coordinator
from repro.dist.faults import FaultPlan, corrupt_file
from repro.dist.pool import ParallelCoordinator
from repro.dist.worker import ChunkWorker
from repro.obs.events import EventLog, read_events
from repro.search.exhaustive import SearchConfig, search_all

SIM_CFG = SearchConfig(width=6, target_hd=4, filter_lengths=(8, 20),
                       confirm_weights=False)
POOL_CFG = SearchConfig(width=8, target_hd=4, filter_lengths=(16, 40, 100),
                        confirm_weights=False)
MAX_SECONDS = 120.0

#: Fields whose values depend on the wall clock or the process, not on
#: the campaign's logical behaviour.
_TIMESTAMP_KEYS = ("t", "wall", "pid", "seconds", "elapsed")


def make_pool_runner(**kwargs) -> ParallelCoordinator:
    kwargs.setdefault("config", POOL_CFG)
    kwargs.setdefault("chunk_size", 8)
    kwargs.setdefault("processes", 2)
    kwargs.setdefault("lease_duration", 2.0)
    kwargs.setdefault("max_seconds", MAX_SECONDS)
    kwargs.setdefault("retry_backoff", 0.01)
    return ParallelCoordinator(**kwargs)


class TestFaultPlanDeterminism:
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_random_plan_is_a_pure_function_of_its_seed(self, seed):
        ids = [f"w{i}" for i in range(5)]
        assert FaultPlan.random_plan(ids, seed) == FaultPlan.random_plan(
            ids, seed
        )

    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=2, max_value=64),
    )
    @settings(max_examples=50, deadline=None)
    def test_chaos_plan_is_deterministic_and_well_formed(self, seed, chunks):
        a = FaultPlan.chaos_plan(seed, chunks, kill_signal_after=3)
        b = FaultPlan.chaos_plan(seed, chunks, kill_signal_after=3)
        assert a == b
        # Crash and kill sets are disjoint chunk ids inside the
        # partition: one chunk gets one failure mode.
        assert a.crash_chunks.isdisjoint(a.kill_chunks)
        assert all(0 <= c < chunks for c in a.crash_chunks | a.kill_chunks)
        assert a.kill_signal_after == 3

    def test_different_seeds_differ(self):
        plans = {
            str(FaultPlan.chaos_plan(seed, 64)) for seed in range(8)
        }
        assert len(plans) > 1


def _event_shape(path: str) -> list[dict]:
    """The event stream with every wall-clock-dependent field removed:
    what 'identical modulo timestamps' means, operationally."""
    shape = []
    for rec in read_events(path):
        shape.append(
            {k: v for k, v in rec.items() if k not in _TIMESTAMP_KEYS}
        )
    return shape


class TestSameSeedCampaignsAreIdentical:
    @pytest.mark.parametrize("seed", [7, 99])
    def test_simulated_event_sequences_match(self, tmp_path, seed):
        def run(tag: str) -> tuple[str, str]:
            ids = [f"w{i}" for i in range(4)]
            plan = FaultPlan.random_plan(ids, seed=seed)
            plan.crash_points.pop("w0", None)  # keep one worker alive
            log = str(tmp_path / f"{tag}.jsonl")
            with EventLog(log) as events:
                coord = Coordinator(
                    config=SIM_CFG, chunk_size=4, lease_duration=2.0,
                    events=events,
                )
                coord.run([ChunkWorker(w, SIM_CFG, faults=plan) for w in ids])
            return log, coord.campaign.to_json()

        log_a, record_a = run("a")
        log_b, record_b = run("b")
        assert record_a == record_b  # bit-identical records
        assert _event_shape(log_a) == _event_shape(log_b)

    def test_event_shape_strips_only_timestamps(self, tmp_path):
        log = str(tmp_path / "probe.jsonl")
        with EventLog(log) as events:
            events.emit("probe", chunk=3, seconds=1.25)
        (open_rec, probe) = _event_shape(log)
        assert open_rec["event"] == "log.open"
        assert probe == {"v": probe["v"], "seq": 1, "event": "probe",
                         "chunk": 3}


class TestPoisonQuarantine:
    def test_poison_chunk_quarantined_campaign_terminates(self):
        runner = make_pool_runner(
            faults=FaultPlan(poison_chunks={5}), max_attempts=3,
        )
        runner.run()
        assert runner.queue.finished and not runner.queue.all_done
        assert runner.queue.quarantined_ids == [5]
        assert runner.stats.quarantined == 1
        assert runner.queue.task(5).attempts == 3
        assert 5 not in runner.campaign.chunks_done
        assert len(runner.campaign.chunks_done) == len(runner.queue) - 1

    def test_quarantine_round_trips_through_checkpoint(self, tmp_path):
        ckpt = str(tmp_path / "q.ckpt")
        first = make_pool_runner(
            faults=FaultPlan(poison_chunks={2}), max_attempts=2,
            checkpoint_path=ckpt,
        )
        first.run()
        assert first.queue.quarantined_ids == [2]

        benched = make_pool_runner(checkpoint_path=ckpt)
        skipped = benched.resume()
        assert skipped == len(benched.queue) - 1
        assert benched.queue.quarantined_ids == [2]
        assert benched.queue.finished  # nothing to run; still benched

        # --retry-quarantined: fresh budget, no faults this time.
        retried = make_pool_runner(checkpoint_path=ckpt)
        retried.resume(retry_quarantined=True)
        assert retried.queue.quarantined_ids == []
        retried.run()
        assert retried.queue.all_done


class TestGracefulShutdown:
    def test_sigterm_drains_checkpoints_and_resumes(self, tmp_path, baseline):
        ckpt = str(tmp_path / "drain.ckpt")
        plan = FaultPlan(kill_signal_after=4)
        first = make_pool_runner(
            checkpoint_path=ckpt, checkpoint_every=2, faults=plan,
            drain_grace=10.0,
        )
        before = signal.getsignal(signal.SIGTERM)
        first.run()
        assert first.interrupted == "SIGTERM"
        assert not first.queue.finished
        assert first.stats.checkpoints_written >= 1
        # The drain restored the previous SIGTERM disposition.
        assert signal.getsignal(signal.SIGTERM) is before

        second = make_pool_runner(checkpoint_path=ckpt)
        skipped = second.resume()
        assert skipped >= 4  # everything delivered before + during drain
        second.run()
        assert second.interrupted is None
        assert_matches_baseline(second, baseline)

    def test_corrupt_checkpoint_resume_falls_back(self, tmp_path, baseline):
        ckpt = str(tmp_path / "rot.ckpt")
        first = make_pool_runner(checkpoint_path=ckpt, checkpoint_every=2)
        first.run(stop_after=6)
        first.save_checkpoint()
        assert os.path.exists(previous_path(ckpt))
        corrupt_file(ckpt, seed=11)

        log = str(tmp_path / "rot.jsonl")
        with EventLog(log) as events:
            second = make_pool_runner(checkpoint_path=ckpt, events=events)
            second.resume()
            second.run()
        names = [rec["event"] for rec in read_events(log)]
        assert "checkpoint.corrupt" in names
        assert_matches_baseline(second, baseline)


# Reuse the pool suite's ground truth so the chaos tests assert the
# same governing invariant against the same baseline.
@pytest.fixture(scope="module")
def baseline():
    res = search_all(POOL_CFG)
    return {r.poly: r.survived for r in res.records}, res.examined


def assert_matches_baseline(runner, baseline):
    truth, examined = baseline
    assert runner.queue.all_done
    assert runner.campaign.candidates_examined == examined
    assert {
        r.poly: r.survived for r in runner.campaign.results.values()
    } == truth


class TestRebuildBackoff:
    def test_repeated_pool_deaths_eventually_give_up(self):
        # Injected kills fire on first attempts only, so a real run
        # cannot wedge the pool forever; drive the streak counter
        # directly to pin down the give-up bound.
        runner = make_pool_runner(max_rebuild_streak=2, rebuild_backoff=0.0)
        executor = runner._new_executor()
        with pytest.raises(RuntimeError, match="giving up"):
            for _ in range(3):
                executor, _ = runner._rebuild(executor, {}, now=0.0)
        executor.shutdown(wait=False)
        assert runner.stats.pool_rebuilds == 3


class TestFarmChaosPlan:
    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=60, deadline=None)
    def test_deterministic_and_well_formed(self, seed, n):
        workers = [f"w{i}" for i in range(n)]
        a = FaultPlan.farm_chaos_plan(seed, workers)
        b = FaultPlan.farm_chaos_plan(seed, workers)
        assert a == b
        # Every fault the schedule promises is actually scheduled.
        assert len(a.net_kill_after) == 1
        assert len(a.net_sever_after) == 1
        assert len(a.net_drop_complete) == 1
        assert len(a.net_duplicate_complete) == 1
        # The drop/duplicate chain: ordinal 0 vanishes, so the resend
        # is ordinal 1 -- the duplicated frame, on the same worker.
        (flaky, drops), = a.net_drop_complete.items()
        assert drops == {0}
        assert a.net_duplicate_complete == {flaky: {1}}
        # All targets come from the farm.
        targets = (
            set(a.net_kill_after) | set(a.net_sever_after)
            | set(a.net_drop_complete)
        )
        assert targets <= set(workers)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_big_farms_spread_the_faults_over_live_workers(self, seed):
        workers = [f"w{i}" for i in range(3)]
        plan = FaultPlan.farm_chaos_plan(seed, workers)
        (victim,), = [list(plan.net_kill_after)]
        (flaky,), = [list(plan.net_drop_complete)]
        # The killed worker never carries the drop/duplicate or sever
        # faults: its recovery path (reaper reclaim) must be exercised
        # on a stranded lease, the others on live reconnecting workers.
        assert victim != flaky
        assert victim not in plan.net_sever_after

    def test_faults_can_be_toggled_off(self):
        plan = FaultPlan.farm_chaos_plan(
            7, ["w0", "w1"], sever=False, kill=False
        )
        assert not plan.net_sever_after and not plan.net_kill_after
        # With drops off, the duplicate falls back to ordinal 0.
        solo = FaultPlan.farm_chaos_plan(7, ["w0"], drop=False, kill=False)
        (dupes,) = solo.net_duplicate_complete.values()
        assert dupes == {0}
