"""Task and queue semantics: leasing, expiry, idempotent completion."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist.queue import LeaseLost, TaskQueue
from repro.dist.tasks import SearchTask, TaskStatus, partition_space


class TestPartition:
    def test_exact_tiling(self):
        tasks = partition_space(8, 32)
        assert [(t.start_index, t.end_index) for t in tasks] == [
            (0, 32), (32, 64), (64, 96), (96, 128)
        ]

    def test_ragged_tail(self):
        tasks = partition_space(8, 50)
        assert tasks[-1].end_index == 128
        assert sum(t.size for t in tasks) == 128

    @given(st.integers(min_value=3, max_value=14), st.integers(min_value=1, max_value=500))
    @settings(max_examples=100)
    def test_tiling_invariants(self, width, chunk):
        tasks = partition_space(width, chunk)
        total = 1 << (width - 1)
        assert tasks[0].start_index == 0
        assert tasks[-1].end_index == total
        for a, b in zip(tasks, tasks[1:]):
            assert a.end_index == b.start_index
        assert len({t.chunk_id for t in tasks}) == len(tasks)

    def test_rejects_bad_chunk(self):
        with pytest.raises(ValueError):
            partition_space(8, 0)


class TestLeasing:
    def make_queue(self, n=4, lease=10.0):
        return TaskQueue(partition_space(6, 32 // n if n else 32), lease_duration=lease)

    def test_lease_lowest_pending(self):
        q = TaskQueue(partition_space(6, 8), lease_duration=10)
        t = q.lease("w1", now=0.0)
        assert t.chunk_id == 0 and t.status is TaskStatus.LEASED
        t2 = q.lease("w2", now=0.0)
        assert t2.chunk_id == 1

    def test_no_pending_returns_none(self):
        q = TaskQueue(partition_space(6, 32), lease_duration=10)
        q.lease("w1", 0.0)
        assert q.lease("w2", 0.0) is None
        assert q.leased == 1

    def test_expiry_reclaims(self):
        q = TaskQueue(partition_space(6, 32), lease_duration=5.0)
        t = q.lease("w1", 0.0)
        assert q.lease("w2", 4.9) is None       # still held
        t2 = q.lease("w2", 5.1)                  # lease expired
        assert t2.chunk_id == t.chunk_id
        assert t2.owner == "w2"
        assert t2.attempts == 2

    def test_renew_extends(self):
        q = TaskQueue(partition_space(6, 32), lease_duration=5.0)
        t = q.lease("w1", 0.0)
        assert q.renew(t.chunk_id, "w1", 4.0)
        assert q.lease("w2", 6.0) is None  # renewed through 9.0

    def test_renew_after_reassignment_raises(self):
        q = TaskQueue(partition_space(6, 32), lease_duration=5.0)
        t = q.lease("w1", 0.0)
        q.lease("w2", 10.0)  # reassigned
        with pytest.raises(LeaseLost, match="re-leased to w2"):
            q.renew(t.chunk_id, "w1", 11.0)

    def test_renew_after_silent_expiry_raises(self):
        # The old bug: an expired-but-not-yet-reclaimed lease could be
        # silently resurrected by its own heartbeat.  A renew arriving
        # after expiry must reclaim first and report the loss.
        q = TaskQueue(partition_space(6, 32), lease_duration=5.0)
        t = q.lease("w1", 0.0)
        with pytest.raises(LeaseLost, match="expired and was reclaimed"):
            q.renew(t.chunk_id, "w1", 6.0)
        assert t.status is TaskStatus.PENDING  # reclaimed, leasable again

    def test_renew_same_owner_new_epoch_raises(self):
        # Same worker id re-leases the chunk after expiry (parent-held
        # leases, a reconnecting host): a heartbeat against the *old*
        # grant must not extend the new one.
        q = TaskQueue(partition_space(6, 32), lease_duration=5.0)
        t = q.lease("w1", 0.0)
        old_epoch = t.epoch
        t2 = q.lease("w1", 6.0)  # reclaim + re-lease to the same id
        assert t2.chunk_id == t.chunk_id and t2.epoch == old_epoch + 1
        with pytest.raises(LeaseLost, match="stale lease epoch"):
            q.renew(t.chunk_id, "w1", 7.0, epoch=old_epoch)
        assert q.renew(t.chunk_id, "w1", 7.0, epoch=t2.epoch)

    def test_renew_after_completion_raises(self):
        q = TaskQueue(partition_space(6, 32), lease_duration=5.0)
        t = q.lease("w1", 0.0)
        t2 = q.lease("w2", 6.0)
        assert t2.chunk_id == t.chunk_id
        q.complete(t.chunk_id, "w2", 7.0)
        with pytest.raises(LeaseLost, match="already completed"):
            q.renew(t.chunk_id, "w1", 7.5)

    def test_renew_after_quarantine_raises(self):
        q = TaskQueue(
            partition_space(6, 32), lease_duration=5.0, max_attempts=1
        )
        t = q.lease("w1", 0.0)
        q.reclaim(6.0)  # budget of 1 spent -> quarantined
        assert t.status is TaskStatus.QUARANTINED
        with pytest.raises(LeaseLost, match="quarantined"):
            q.renew(t.chunk_id, "w1", 7.0)

    def test_eager_reclaim_sweep(self):
        q = TaskQueue(partition_space(6, 8), lease_duration=5.0)
        q.lease("w1", 0.0)
        q.lease("w1", 0.0)
        expired = []
        q.on_expire = lambda task, now: expired.append(task.chunk_id)
        q.reclaim(6.0)
        assert sorted(expired) == [0, 1]
        assert q.pending == len(q) and q.leased == 0

    def test_duplicate_chunk_ids_rejected(self):
        tasks = [SearchTask(0, 0, 1), SearchTask(0, 1, 2)]
        with pytest.raises(ValueError):
            TaskQueue(tasks)


class TestCompletion:
    def test_first_completion_wins(self):
        q = TaskQueue(partition_space(6, 32), lease_duration=5.0)
        t = q.lease("w1", 0.0)
        assert q.complete(t.chunk_id, "w1", 1.0)
        assert not q.complete(t.chunk_id, "w1", 1.1)   # replay
        assert not q.complete(t.chunk_id, "w2", 1.2)   # other worker
        assert q.done == 1

    def test_late_completion_from_expired_lease_accepted(self):
        # worker w1 went silent, chunk reassigned to w2; w1 wakes up
        # and completes first -- accepted (deterministic computation).
        q = TaskQueue(partition_space(6, 32), lease_duration=5.0)
        t = q.lease("w1", 0.0)
        q.lease("w2", 10.0)
        assert q.complete(t.chunk_id, "w1", 10.5)
        assert q.done == 1

    def test_progress_line(self):
        q = TaskQueue(partition_space(6, 16), lease_duration=5.0)
        q.lease("w1", 0.0)
        assert "1 in flight" in q.progress()
        assert not q.all_done


class TestRetryBudget:
    """max_attempts / backoff / quarantine semantics (new in the
    survival kit; max_attempts=0 above keeps the legacy behaviour)."""

    def make_queue(self, **kw):
        kw.setdefault("lease_duration", 5.0)
        kw.setdefault("max_attempts", 3)
        return TaskQueue(partition_space(6, 8), **kw)

    def test_budget_exhaustion_quarantines(self):
        q = self.make_queue()
        seen = []
        q.on_quarantine = lambda t, now: seen.append(t.chunk_id)
        now = 0.0
        for _ in range(3):  # three leases, three expiries
            t = q.lease("w", now)
            assert t.chunk_id == 0
            now += 10.0  # past the lease
        q.lease("w2", now)  # reclaim triggers the forfeit accounting
        task = q.task(0)
        assert task.status is TaskStatus.QUARANTINED
        assert seen == [0]
        assert q.quarantined_ids == [0]
        assert not q.all_done
        assert "quarantined" in q.progress()

    def test_release_counts_against_budget(self):
        q = self.make_queue(max_attempts=2)
        t = q.lease("w", 0.0)
        assert q.release(t.chunk_id, "w", 1.0)       # voluntary forfeit
        assert not q.release(t.chunk_id, "w", 1.1)   # no longer the owner
        t = q.lease("w", 2.0)
        assert t.attempts == 2
        q.release(t.chunk_id, "w", 3.0)              # budget spent
        assert q.task(t.chunk_id).status is TaskStatus.QUARANTINED

    def test_backoff_delays_next_lease(self):
        q = TaskQueue(partition_space(6, 32), lease_duration=5.0,
                      backoff_base=1.0)  # single-chunk partition
        delays = []
        q.on_backoff = lambda t, d: delays.append(d)
        t = q.lease("w", 0.0)
        q.release(t.chunk_id, "w", 1.0)
        assert len(delays) == 1 and 0.5 <= delays[0] <= 1.5
        assert q.lease("w", 1.0) is None              # still backing off
        assert q.lease("w", 1.0 + delays[0]) is not None
        assert q.next_wakeup(1.0) is not None

    def test_backoff_jitter_is_deterministic(self):
        def delays_for(seed_unused):
            q = self.make_queue(backoff_base=1.0, max_attempts=0)
            out = []
            q.on_backoff = lambda t, d: out.append(d)
            for i in range(2):
                t = q.lease("w", 100.0 * i)
                q.release(t.chunk_id, "w", 100.0 * i + 1)
            return out

        assert delays_for(0) == delays_for(1)

    def test_late_completion_rescues_quarantined_chunk(self):
        """The computation is deterministic: a straggler's answer for
        a quarantined chunk is still *the* answer."""
        q = self.make_queue(max_attempts=1)
        t = q.lease("w", 0.0)
        q.release(t.chunk_id, "w", 1.0)
        assert q.task(t.chunk_id).status is TaskStatus.QUARANTINED
        assert q.complete(t.chunk_id, "w", 2.0)
        assert q.task(t.chunk_id).status is TaskStatus.DONE
        assert q.quarantined == 0

    def test_mark_quarantined_restores_checkpoint_verdict(self):
        q = self.make_queue()
        assert q.mark_quarantined(1)
        assert q.mark_quarantined(1)          # idempotent
        assert q.quarantined_ids == [1]
        t = q.lease("w", 0.0)
        assert t.chunk_id == 0                # quarantined chunk skipped
        q.complete(0, "w", 1.0)
        assert not q.mark_quarantined(0)      # DONE wins over quarantine

    def test_finished_counts_quarantine_but_all_done_does_not(self):
        q = TaskQueue(partition_space(6, 16), lease_duration=5.0,
                      max_attempts=1)
        t = q.lease("w", 0.0)
        q.release(t.chunk_id, "w", 1.0)       # quarantined (budget 1)
        assert not q.finished
        t = q.lease("w", 2.0)
        q.complete(t.chunk_id, "w", 3.0)
        assert q.finished
        assert not q.all_done


class TestExactlyOnceAccounting:
    """Queue edge cases driven through a CampaignRecord, asserting the
    end-to-end exactly-once merge the campaign relies on."""

    def _engine(self):
        from repro.search.exhaustive import SearchConfig, search_chunk
        from repro.search.records import CampaignRecord

        cfg = SearchConfig(width=6, target_hd=4, filter_lengths=(8, 20),
                           confirm_weights=False)
        campaign = CampaignRecord(width=6, data_word_bits=20, target_hd=4)

        def deliver(campaign_, task):
            res = search_chunk(cfg, task.start_index, task.end_index)
            return campaign_.merge_chunk(task.chunk_id, res.records,
                                         res.examined)

        return campaign, deliver

    def test_renew_after_expiry_then_both_complete_once(self):
        campaign, deliver = self._engine()
        q = TaskQueue(partition_space(6, 8), lease_duration=5.0)
        t = q.lease("w1", 0.0)
        # w1's lease silently expires; w2 re-leases the chunk.
        t2 = q.lease("w2", 6.0)
        assert t2.chunk_id == t.chunk_id
        with pytest.raises(LeaseLost):
            q.renew(t.chunk_id, "w1", 6.5)          # w1 must abandon
        # Both deliver anyway (w1 never got the memo): merged once.
        assert q.complete(t.chunk_id, "w2", 7.0) and deliver(campaign, t2)
        assert not q.complete(t.chunk_id, "w1", 7.5)
        assert not deliver(campaign, t)
        assert campaign.chunks_done == {t.chunk_id}
        examined_once = campaign.candidates_examined
        assert examined_once == t.size

    def test_stale_owner_completion_after_release(self):
        campaign, deliver = self._engine()
        q = TaskQueue(partition_space(6, 8), lease_duration=5.0,
                      max_attempts=5)
        t = q.lease("w1", 0.0)
        q.release(t.chunk_id, "w1", 1.0)            # parent saw w1 die
        t2 = q.lease("w2", 2.0)
        assert t2.chunk_id == t.chunk_id and t2.attempts == 2
        # The "dead" worker's completion lands first: accepted once.
        assert q.complete(t.chunk_id, "w1", 2.5) and deliver(campaign, t)
        assert not q.complete(t.chunk_id, "w2", 3.0)
        assert not deliver(campaign, t2)
        assert q.done == 1
        assert campaign.candidates_examined == t.size

    def test_duplicate_complete_merges_once(self):
        campaign, deliver = self._engine()
        q = TaskQueue(partition_space(6, 8), lease_duration=5.0)
        t = q.lease("w1", 0.0)
        first = q.complete(t.chunk_id, "w1", 1.0) and deliver(campaign, t)
        second = q.complete(t.chunk_id, "w1", 1.1) and deliver(campaign, t)
        assert first and not second
        assert len(campaign.chunks_done) == 1
        assert campaign.candidates_examined == t.size
