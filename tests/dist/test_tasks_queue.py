"""Task and queue semantics: leasing, expiry, idempotent completion."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist.queue import TaskQueue
from repro.dist.tasks import SearchTask, TaskStatus, partition_space


class TestPartition:
    def test_exact_tiling(self):
        tasks = partition_space(8, 32)
        assert [(t.start_index, t.end_index) for t in tasks] == [
            (0, 32), (32, 64), (64, 96), (96, 128)
        ]

    def test_ragged_tail(self):
        tasks = partition_space(8, 50)
        assert tasks[-1].end_index == 128
        assert sum(t.size for t in tasks) == 128

    @given(st.integers(min_value=3, max_value=14), st.integers(min_value=1, max_value=500))
    @settings(max_examples=100)
    def test_tiling_invariants(self, width, chunk):
        tasks = partition_space(width, chunk)
        total = 1 << (width - 1)
        assert tasks[0].start_index == 0
        assert tasks[-1].end_index == total
        for a, b in zip(tasks, tasks[1:]):
            assert a.end_index == b.start_index
        assert len({t.chunk_id for t in tasks}) == len(tasks)

    def test_rejects_bad_chunk(self):
        with pytest.raises(ValueError):
            partition_space(8, 0)


class TestLeasing:
    def make_queue(self, n=4, lease=10.0):
        return TaskQueue(partition_space(6, 32 // n if n else 32), lease_duration=lease)

    def test_lease_lowest_pending(self):
        q = TaskQueue(partition_space(6, 8), lease_duration=10)
        t = q.lease("w1", now=0.0)
        assert t.chunk_id == 0 and t.status is TaskStatus.LEASED
        t2 = q.lease("w2", now=0.0)
        assert t2.chunk_id == 1

    def test_no_pending_returns_none(self):
        q = TaskQueue(partition_space(6, 32), lease_duration=10)
        q.lease("w1", 0.0)
        assert q.lease("w2", 0.0) is None
        assert q.leased == 1

    def test_expiry_reclaims(self):
        q = TaskQueue(partition_space(6, 32), lease_duration=5.0)
        t = q.lease("w1", 0.0)
        assert q.lease("w2", 4.9) is None       # still held
        t2 = q.lease("w2", 5.1)                  # lease expired
        assert t2.chunk_id == t.chunk_id
        assert t2.owner == "w2"
        assert t2.attempts == 2

    def test_renew_extends(self):
        q = TaskQueue(partition_space(6, 32), lease_duration=5.0)
        t = q.lease("w1", 0.0)
        assert q.renew(t.chunk_id, "w1", 4.0)
        assert q.lease("w2", 6.0) is None  # renewed through 9.0

    def test_renew_after_reassignment_fails(self):
        q = TaskQueue(partition_space(6, 32), lease_duration=5.0)
        t = q.lease("w1", 0.0)
        q.lease("w2", 10.0)  # reassigned
        assert not q.renew(t.chunk_id, "w1", 11.0)

    def test_duplicate_chunk_ids_rejected(self):
        tasks = [SearchTask(0, 0, 1), SearchTask(0, 1, 2)]
        with pytest.raises(ValueError):
            TaskQueue(tasks)


class TestCompletion:
    def test_first_completion_wins(self):
        q = TaskQueue(partition_space(6, 32), lease_duration=5.0)
        t = q.lease("w1", 0.0)
        assert q.complete(t.chunk_id, "w1", 1.0)
        assert not q.complete(t.chunk_id, "w1", 1.1)   # replay
        assert not q.complete(t.chunk_id, "w2", 1.2)   # other worker
        assert q.done == 1

    def test_late_completion_from_expired_lease_accepted(self):
        # worker w1 went silent, chunk reassigned to w2; w1 wakes up
        # and completes first -- accepted (deterministic computation).
        q = TaskQueue(partition_space(6, 32), lease_duration=5.0)
        t = q.lease("w1", 0.0)
        q.lease("w2", 10.0)
        assert q.complete(t.chunk_id, "w1", 10.5)
        assert q.done == 1

    def test_progress_line(self):
        q = TaskQueue(partition_space(6, 16), lease_duration=5.0)
        q.lease("w1", 0.0)
        assert "1 in flight" in q.progress()
        assert not q.all_done
