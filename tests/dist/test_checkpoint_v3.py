"""Format-3 checkpoint durability: CRC self-check, generation
rotation, corruption fallback, and legacy-format migration."""

from __future__ import annotations

import json
import os

import pytest

from repro.dist import checkpoint as checkpoint_io
from repro.dist.checkpoint import (
    CheckpointCorrupt,
    CheckpointMismatch,
    CheckpointMissing,
    previous_path,
)
from repro.dist.faults import corrupt_file
from repro.search.exhaustive import SearchConfig, search_chunk
from repro.search.records import CampaignRecord

CFG = SearchConfig(width=6, target_hd=4, filter_lengths=(8, 20),
                   confirm_weights=False)
CHUNK = 8


def make_campaign(chunks_done=()) -> CampaignRecord:
    campaign = CampaignRecord(
        width=CFG.width, data_word_bits=CFG.final_length,
        target_hd=CFG.target_hd,
    )
    for chunk_id in chunks_done:
        res = search_chunk(CFG, chunk_id * CHUNK, (chunk_id + 1) * CHUNK)
        campaign.merge_chunk(chunk_id, res.records, res.examined)
    return campaign


def save(path, campaign, quarantined=()):
    checkpoint_io.save(str(path), campaign, CFG, CHUNK, quarantined)


class TestFormat3:
    def test_round_trips_with_crc(self, tmp_path):
        path = tmp_path / "c.json"
        campaign = make_campaign([0, 1])
        save(path, campaign, quarantined=[3])
        loaded = checkpoint_io.load(str(path), CFG, CHUNK)
        assert loaded.format_version == 3
        assert not loaded.fell_back
        assert loaded.source == str(path)
        assert loaded.quarantined == {3}
        assert loaded.campaign.to_json() == campaign.to_json()

    def test_crc_covers_canonical_payload(self, tmp_path):
        path = tmp_path / "c.json"
        save(path, make_campaign([0]))
        doc = json.loads(path.read_text())
        assert int(doc["crc32"], 16) == checkpoint_io.payload_crc(doc)
        # The checksum field itself is excluded from the covered bytes.
        assert b"crc32" not in checkpoint_io.canonical_payload_bytes(doc)

    def test_any_byte_flip_is_detected(self, tmp_path):
        path = tmp_path / "c.json"
        save(path, make_campaign([0, 1, 2]))
        raw = bytearray(path.read_bytes())
        # Change one digit of a count: the file stays perfectly valid
        # JSON (a structural parse would accept the silently-wrong
        # number), but the CRC self-check must refuse it.
        marker = b'"candidates_examined": '
        idx = raw.index(marker) + len(marker)
        raw[idx] = ord("9") if raw[idx] != ord("9") else ord("8")
        path.write_bytes(bytes(raw))
        assert not checkpoint_io.verify_file(str(path))
        with pytest.raises(CheckpointCorrupt, match="CRC-32 self-check"):
            checkpoint_io.load(str(path), CFG, CHUNK)

    def test_truncated_file_is_corrupt(self, tmp_path):
        path = tmp_path / "c.json"
        save(path, make_campaign([0]))  # first save: no .prev to fall back on
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])  # torn write
        with pytest.raises(CheckpointCorrupt):
            checkpoint_io.load(str(path), CFG, CHUNK)

    def test_missing_checkpoint_has_actionable_error(self, tmp_path):
        with pytest.raises(CheckpointMissing, match="no checkpoint found"):
            checkpoint_io.load(str(tmp_path / "never.json"), CFG, CHUNK)


class TestGenerations:
    def test_save_rotates_previous_generation(self, tmp_path):
        path = tmp_path / "c.json"
        save(path, make_campaign([0]))
        assert not os.path.exists(previous_path(str(path)))
        save(path, make_campaign([0, 1]))
        prev = checkpoint_io.load(previous_path(str(path)), CFG, CHUNK)
        assert prev.campaign.chunks_done == {0}

    def test_corrupt_current_falls_back_to_previous(self, tmp_path):
        path = tmp_path / "c.json"
        save(path, make_campaign([0]))
        save(path, make_campaign([0, 1]))
        corrupt_file(str(path), seed=7)
        loaded = checkpoint_io.load(str(path), CFG, CHUNK)
        assert loaded.fell_back
        assert loaded.source == previous_path(str(path))
        assert loaded.corrupt_error is not None
        assert loaded.campaign.chunks_done == {0}

    def test_missing_current_falls_back_to_previous(self, tmp_path):
        path = tmp_path / "c.json"
        save(path, make_campaign([0]))
        save(path, make_campaign([0, 1]))
        os.unlink(path)
        loaded = checkpoint_io.load(str(path), CFG, CHUNK)
        assert loaded.fell_back and loaded.campaign.chunks_done == {0}

    def test_both_generations_corrupt_raises(self, tmp_path):
        path = tmp_path / "c.json"
        save(path, make_campaign([0]))
        save(path, make_campaign([0, 1]))
        corrupt_file(str(path), seed=1)
        corrupt_file(previous_path(str(path)), seed=2)
        with pytest.raises(CheckpointCorrupt, match="both"):
            checkpoint_io.load(str(path), CFG, CHUNK)

    def test_corrupt_current_is_not_promoted(self, tmp_path):
        """Saving over silent bit rot must not rotate the rotten bytes
        into .prev -- that would poison the only fallback."""
        path = tmp_path / "c.json"
        save(path, make_campaign([0]))
        corrupt_file(str(path), seed=3)
        save(path, make_campaign([0, 1]))
        assert not os.path.exists(previous_path(str(path)))
        loaded = checkpoint_io.load(str(path), CFG, CHUNK)
        assert loaded.campaign.chunks_done == {0, 1}

    def test_mismatch_never_triggers_fallback(self, tmp_path):
        """A well-formed foreign checkpoint raises CheckpointMismatch
        even when a previous generation exists: the .prev of a foreign
        campaign is just as foreign."""
        path = tmp_path / "c.json"
        save(path, make_campaign([0]))
        save(path, make_campaign([0, 1]))
        other = SearchConfig(width=8, target_hd=4, filter_lengths=(8, 20),
                             confirm_weights=False)
        with pytest.raises(CheckpointMismatch):
            checkpoint_io.load(str(path), other, CHUNK)


class TestLegacyFormats:
    def test_format_1_bare_record_loads(self, tmp_path):
        campaign = make_campaign([0])
        path = tmp_path / "legacy1.json"
        path.write_text(campaign.to_json())
        loaded = checkpoint_io.load(str(path), CFG, CHUNK)
        assert loaded.format_version == 1
        assert loaded.quarantined == set()
        assert loaded.campaign.chunks_done == {0}

    def test_format_2_envelope_loads(self, tmp_path):
        campaign = make_campaign([0, 2])
        doc = {
            "format": checkpoint_io.FORMAT_2,
            "config": {
                "width": CFG.width, "target_hd": CFG.target_hd,
                "final_length": CFG.final_length, "chunk_size": CHUNK,
            },
            "campaign": campaign.to_json_dict(),
        }
        path = tmp_path / "legacy2.json"
        path.write_text(json.dumps(doc))
        loaded = checkpoint_io.load(str(path), CFG, CHUNK)
        assert loaded.format_version == 2
        assert loaded.campaign.chunks_done == {0, 2}
