"""Shared fixtures and slow-test gating.

Tests marked ``@pytest.mark.slow`` (multi-second exact computations at
long lengths) are skipped unless ``RUN_SLOW=1`` is set or ``-m slow``
is requested explicitly; the default suite stays fast enough to run on
every change.
"""

from __future__ import annotations

import os

import pytest

from repro.crc.catalog import PAPER_POLYS
from repro.gf2.notation import koopman_to_full


def pytest_collection_modifyitems(config, items):
    if os.environ.get("RUN_SLOW") == "1":
        return
    if "slow" in config.getoption("-m", default=""):
        return
    skip_slow = pytest.mark.skip(reason="slow; set RUN_SLOW=1 to run")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


@pytest.fixture(scope="session")
def paper_polys():
    """The paper's eight polynomials, keyed as in the catalog."""
    return PAPER_POLYS


@pytest.fixture(scope="session")
def g_8023():
    """IEEE 802.3 generator, full encoding (0x104C11DB7)."""
    return koopman_to_full(0x82608EDB)


@pytest.fixture(scope="session")
def g_ba0d():
    """The paper's headline polynomial 0xBA0DC66B, full encoding."""
    return koopman_to_full(0xBA0DC66B)


# Small generators used by unit and property tests (named by their
# conventional identities where they have one).
TOY_POLYS = {
    "crc3": 0b1011,            # x^3+x+1, primitive
    "crc4-itu": 0b10011,       # x^4+x+1, primitive
    "crc5": 0b110101,          # x^5+x^4+x^2+1 = (x+1)(x^4+x^3+1)
    "crc7": 0b10001001,        # x^7+x^3+1 (MMC), primitive
    "crc8-atm": 0x107,         # x^8+x^2+x+1 = (x+1)(x^7+x^6+x^5+x^4+x^3+x^2+1)?
    "crc8-maxim": 0x131,       # x^8+x^5+x^4+1
    "crc16-ccitt": 0x11021,    # x^16+x^12+x^5+1
    "crc16-ibm": 0x18005,      # x^16+x^15+x^2+1
}


@pytest.fixture(scope="session", params=sorted(TOY_POLYS))
def toy_poly(request):
    """Parametrized small generator polynomial (full encoding)."""
    return TOY_POLYS[request.param]
