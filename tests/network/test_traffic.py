"""Tests for traffic-mix exposure analysis."""

from __future__ import annotations

import pytest

from repro.gf2.notation import koopman_to_full
from repro.network.traffic import (
    TrafficClass,
    compare_exposure,
    exposure,
    internet_mix,
)

SMALL_MIX = [
    TrafficClass("short", 40, 0.7),
    TrafficClass("long", 110, 0.3),
]


class TestTrafficClass:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrafficClass("bad", 0, 0.5)
        with pytest.raises(ValueError):
            TrafficClass("bad", 10, 0.0)

    def test_internet_mix_sums_to_one(self):
        assert sum(tc.fraction for tc in internet_mix()) == pytest.approx(1.0)
        assert {tc.data_word_bits for tc in internet_mix()} == {400, 4496, 12112}


class TestExposure:
    def test_crc8_exposure(self):
        rep = exposure(0x107, SMALL_MIX)
        assert rep.min_hd == 4
        assert rep.per_class["short"]["hd"] == 4
        assert rep.per_class["short"]["w4"] > 0
        assert rep.weighted_w4_rate > 0

    def test_weighting(self):
        rep = exposure(0x107, SMALL_MIX)
        short = rep.per_class["short"]["w4_rate"]
        long_ = rep.per_class["long"]["w4_rate"]
        assert rep.weighted_w4_rate == pytest.approx(0.7 * short + 0.3 * long_)

    def test_bad_mix_rejected(self):
        with pytest.raises(ValueError):
            exposure(0x107, [TrafficClass("only", 40, 0.5)])

    def test_render(self):
        text = exposure(0x107, SMALL_MIX).render()
        assert "worst-case HD" in text
        assert "short" in text


class TestHd6Advantage:
    def test_zero_w4_for_hd6_poly_on_mix(self):
        # On the short leg of the mix, a HD=6 polynomial's 4-bit miss
        # rate is exactly zero; 802.3's is not.
        mix = [TrafficClass("ack", 400, 1.0)]
        g_8023 = koopman_to_full(0x82608EDB)
        g_ba0d = koopman_to_full(0xBA0DC66B)
        assert exposure(g_ba0d, mix).weighted_w4_rate == 0.0
        assert exposure(g_8023, mix).weighted_w4_rate == 0.0  # HD=5 at 400
        mix_longer = [TrafficClass("data", 3000, 1.0)]
        assert exposure(g_8023, mix_longer).weighted_w4_rate > 0.0
        assert exposure(g_ba0d, mix_longer).weighted_w4_rate == 0.0

    def test_compare_table(self):
        mix = [TrafficClass("data", 3000, 1.0)]
        table = compare_exposure(
            {"802.3": koopman_to_full(0x82608EDB),
             "BA0DC66B": koopman_to_full(0xBA0DC66B)},
            mix,
        )
        lines = table.splitlines()
        # the guaranteed-zero polynomial sorts first
        assert "BA0DC66B" in lines[2]
        assert "guaranteed" in lines[2]
