"""Frame model tests -- the paper's exact bit accounting."""

from __future__ import annotations

import pytest

from repro.crc.catalog import get_spec
from repro.network.frames import (
    ACK_DATA_WORD_BITS,
    DATA512_DATA_WORD_BITS,
    JUMBO_DATA_WORD_BITS,
    MTU_DATA_WORD_BITS,
    EthernetFrame,
    IscsiPdu,
    data_word_bits_for_payload,
    figure1_marks,
)


class TestPaperLengths:
    def test_mtu_is_12112(self):
        assert MTU_DATA_WORD_BITS == 12112
        assert MTU_DATA_WORD_BITS + 32 == 12144  # the codeword length

    def test_jumbo_is_72112(self):
        assert JUMBO_DATA_WORD_BITS == 72112

    def test_ack_and_data_sizes(self):
        assert ACK_DATA_WORD_BITS == 400
        assert DATA512_DATA_WORD_BITS == 4496

    def test_payload_mapping(self):
        assert data_word_bits_for_payload(1500) == 12112
        assert data_word_bits_for_payload(9000) == 72112
        with pytest.raises(ValueError):
            data_word_bits_for_payload(-1)

    def test_figure1_marks_present(self):
        marks = figure1_marks()
        assert marks["1 MTU"] == 12112
        assert marks["40B ack packet"] == 400
        assert set(marks) >= {"2 MTU", "4 MTU", "8 MTU"}


class TestEthernetFrame:
    def make(self, payload=b"\x00" * 1500):
        return EthernetFrame(
            dst=b"\xff" * 6, src=b"\x02" + b"\x00" * 5, ethertype=0x0800,
            payload=payload,
        )

    def test_mtu_frame_bit_count(self):
        assert self.make().data_word_bits == 12112

    def test_wire_roundtrip(self):
        spec = get_spec("CRC-32/IEEE-802.3")
        frame = self.make(b"hello")
        wire = frame.to_wire(spec)
        assert EthernetFrame.check_wire(spec, wire)
        assert len(wire) == 14 + 5 + 4

    def test_corruption_detected(self):
        spec = get_spec("CRC-32/IEEE-802.3")
        wire = bytearray(self.make(b"payload").to_wire(spec))
        wire[3] ^= 0x40
        assert not EthernetFrame.check_wire(spec, bytes(wire))

    def test_validation(self):
        with pytest.raises(ValueError):
            EthernetFrame(dst=b"\x00", src=b"\x00" * 6, ethertype=0, payload=b"")
        with pytest.raises(ValueError):
            EthernetFrame(dst=b"\x00" * 6, src=b"\x00" * 6, ethertype=1 << 16, payload=b"")


class TestIscsiPdu:
    def test_packed_mtus(self):
        pdu = IscsiPdu.packed_mtus(8)
        assert pdu.data_word_bits == (48 + 8 * 1500) * 8

    def test_multi_mtu_exceeds_64k(self):
        # the motivation for HD=4 beyond 64K bits (§4.3)
        assert IscsiPdu.packed_mtus(6).data_word_bits > 65536

    def test_bhs_length_enforced(self):
        with pytest.raises(ValueError):
            IscsiPdu(bhs=b"\x00" * 47)

    def test_wire(self):
        spec = get_spec("CRC-32C/Castagnoli")
        pdu = IscsiPdu(data_segment=b"disk block")
        from repro.crc.codeword import check_fcs

        assert check_fcs(spec, pdu.to_wire(spec))
