"""Monte Carlo undetected-error tests, cross-validated against exact
weights (the link between the network substrate and repro.hd)."""

from __future__ import annotations

from math import comb

import pytest

from repro.hd.weights import weight_profile
from repro.network.errors import BernoulliBitErrors, FixedWeightErrors
from repro.network.montecarlo import (
    analytic_pud,
    detected_all_bursts,
    simulate_undetected,
)


class TestBurstGuarantee:
    @pytest.mark.parametrize("g", [0x107, 0x131, 0x11021])
    def test_all_short_bursts_detected(self, g):
        assert detected_all_bursts(g, 40)

    def test_burst_longer_than_r_can_evade(self):
        # the generator itself is an undetectable "burst" of length
        # deg+1 -- confirming the guarantee is tight
        from repro.hd.syndromes import is_undetected_pattern

        g = 0x107
        positions = tuple(i for i in range(9) if (g >> i) & 1)
        assert is_undetected_pattern(g, positions)


class TestFixedWeightAgainstExactW4:
    def test_rate_matches_w4_over_choose(self):
        # For weight-4 errors on 0x107 at n=52 (N=60), the undetected
        # fraction must track W4 / C(60, 4).
        g, n = 0x107, 52
        N = n + 8
        w4 = weight_profile(g, n, 4)[4]
        expected = w4 / comb(N, 4)
        model = FixedWeightErrors(4, seed=11)
        res = simulate_undetected(g, n, model, trials=60_000)
        assert res.corrupted == 60_000
        got = res.p_undetected_given_corrupted
        assert abs(got - expected) / expected < 0.25

    def test_weight2_and_3_never_undetected_below_breakpoints(self):
        g, n = 0x107, 80  # HD=4 region
        for w in (2, 3):
            res = simulate_undetected(g, n, FixedWeightErrors(w, seed=3), trials=20_000)
            assert res.undetected == 0


class TestFramePathAgreement:
    def test_syndrome_and_frame_paths_agree(self):
        g, n = 0x107, 64  # byte-aligned
        for seed in (1, 2):
            fast = simulate_undetected(
                g, n, FixedWeightErrors(4, seed=seed), trials=4000
            )
            slow = simulate_undetected(
                g, n, FixedWeightErrors(4, seed=seed), trials=4000, via_frames=True
            )
            assert fast.undetected == slow.undetected
            assert fast.detected == slow.detected

    def test_via_frames_requires_alignment(self):
        with pytest.raises(ValueError):
            simulate_undetected(
                0x107, 13, FixedWeightErrors(2, seed=1), trials=10, via_frames=True
            )


class TestAnalyticPud:
    def test_zero_weights_zero_pud(self):
        assert analytic_pud({2: 0, 3: 0, 4: 0}, 1000, 1e-6) == 0.0

    def test_single_term(self):
        pud = analytic_pud({4: 10}, 100, 0.01)
        assert pud == pytest.approx(10 * 0.01**4 * 0.99**96)

    def test_bernoulli_simulation_tracks_analytic(self):
        # BER chosen so a few dozen undetected events are expected
        # (statistical power) while the exact W2..W4 expansion still
        # dominates P_ud (truncation error ~10%).
        g, n, ber = 0x107, 80, 0.02
        N = n + 8
        weights = weight_profile(g, n, 4)
        pud = analytic_pud(weights, N, ber)
        p_corrupt = 1 - (1 - ber) ** N
        expected_cond = pud / p_corrupt
        res = simulate_undetected(
            g, n, BernoulliBitErrors(ber, seed=21), trials=200_000
        )
        got = res.p_undetected_given_corrupted
        assert res.undetected >= 10  # statistically meaningful
        assert expected_cond / 2 < got < expected_cond * 2.5

    def test_tail_bound_increases(self):
        w = {4: 100}
        assert analytic_pud(w, 200, 0.01, tail_bound=True) > analytic_pud(w, 200, 0.01)
