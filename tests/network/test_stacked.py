"""Stacked link+app CRC analysis tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf2.notation import koopman_to_full
from repro.gf2.poly import degree, gf2_mod
from repro.hd.syndromes import is_undetected_pattern
from repro.hd.weights import brute_force_weights
from repro.network.stacked import (
    combined_generator,
    same_poly_pitfall,
    stacked_hd,
    stacked_weights,
)

small_gens = st.integers(min_value=0b1001, max_value=(1 << 9) - 1).filter(
    lambda p: p & 1
)


class TestCombinedGenerator:
    def test_same_poly(self):
        assert combined_generator(0x107, 0x107) == 0x107

    def test_coprime_is_product(self):
        from repro.gf2.poly import gf2_mul

        a, b = 0b1011, 0b111  # coprime irreducibles
        assert combined_generator(a, b) == gf2_mul(a, b)

    @given(small_gens, small_gens)
    @settings(max_examples=150)
    def test_lcm_properties(self, a, b):
        l = combined_generator(a, b)
        assert gf2_mod(l, a) == 0 and gf2_mod(l, b) == 0
        from repro.gf2.poly import gf2_gcd, gf2_mul

        assert degree(l) + degree(gf2_gcd(a, b)) == degree(a) + degree(b)

    @given(small_gens, small_gens,
           st.sets(st.integers(min_value=0, max_value=40), min_size=2, max_size=6))
    @settings(max_examples=200, deadline=None)
    def test_combined_codewords_are_joint_codewords(self, a, b, positions):
        l = combined_generator(a, b)
        pos = sorted(positions)
        both = is_undetected_pattern(a, pos) and is_undetected_pattern(b, pos)
        assert is_undetected_pattern(l, pos) == both


class TestStackedHd:
    def test_same_poly_pitfall(self):
        assert same_poly_pitfall(0x107, 60)
        assert same_poly_pitfall(koopman_to_full(0x82608EDB), 500)

    def test_different_small_polys_improve(self):
        # two coprime CRC-8s jointly behave like a 16-bit check
        a = stacked_hd(0x107, 0x11D, 60)
        assert a.effective_check_bits == 16
        assert a.hd_stacked >= max(a.hd_link, a.hd_app)

    def test_stacked_hd_matches_brute_force(self):
        a, b = 0b100101, 0b101111
        combined = combined_generator(a, b)
        n = 12
        w = brute_force_weights(combined, n, 8)
        expected = next(k for k in range(2, 9) if w[k])
        analysis = stacked_hd(a, b, n, k_max=10)
        assert analysis.hd_stacked == expected

    @pytest.mark.slow
    def test_paper_polys_stack_to_64_bits(self):
        # k_max=8 keeps this fast: a verified "joint HD >= 8" bound is
        # all the assertion needs (exact joint HDs are bench territory)
        a = stacked_hd(
            koopman_to_full(0x82608EDB), koopman_to_full(0xBA0DC66B), 1000,
            k_max=8,
        )
        assert a.effective_check_bits == 64
        assert a.hd_stacked >= a.hd_link + 2  # far better than either

    def test_render(self):
        a = stacked_hd(0x107, 0x11D, 60)
        text = a.render()
        assert "joint HD" in text


class TestStackedWeights:
    def test_joint_weights_are_zero_below_joint_hd(self):
        analysis = stacked_hd(0x107, 0x11D, 40)
        weights = stacked_weights(0x107, 0x11D, 40, 4)
        for k, w in weights.items():
            if k < analysis.hd_stacked:
                assert w == 0
