"""Error model tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.errors import (
    BernoulliBitErrors,
    BurstError,
    FixedWeightErrors,
    apply_error,
)


class TestBernoulli:
    def test_zero_ber_is_clean(self):
        model = BernoulliBitErrors(0.0, seed=1)
        assert all(model.sample(1000) == () for _ in range(50))

    def test_positions_in_range_and_distinct(self):
        model = BernoulliBitErrors(0.01, seed=2)
        for _ in range(200):
            pos = model.sample(500)
            assert len(set(pos)) == len(pos)
            assert all(0 <= p < 500 for p in pos)

    def test_mean_flip_count_tracks_ber(self):
        model = BernoulliBitErrors(0.002, seed=3)
        n, trials = 2000, 2000
        total = sum(len(model.sample(n)) for _ in range(trials))
        expected = n * 0.002 * trials
        assert abs(total - expected) / expected < 0.15

    def test_high_rate_normal_path(self):
        model = BernoulliBitErrors(0.2, seed=4)
        n = 4000
        counts = [len(model.sample(n)) for _ in range(50)]
        mean = sum(counts) / len(counts)
        assert abs(mean - 800) / 800 < 0.1

    def test_invalid_ber(self):
        with pytest.raises(ValueError):
            BernoulliBitErrors(1.5)

    def test_deterministic_with_seed(self):
        a = [BernoulliBitErrors(0.01, seed=9).sample(300) for _ in range(5)]
        b = [BernoulliBitErrors(0.01, seed=9).sample(300) for _ in range(5)]
        assert a == b


class TestBurst:
    def test_single_bit(self):
        assert BurstError(7, 1).positions() == (7,)

    def test_endpoints_always_set(self):
        b = BurstError(10, 8, interior_pattern=0)
        assert b.positions() == (10, 17)

    def test_full_burst(self):
        assert BurstError(3, 4).positions() == (3, 4, 5, 6)

    def test_interior_pattern(self):
        b = BurstError(0, 5, interior_pattern=0b101)
        assert b.positions() == (0, 1, 3, 4)

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            BurstError(0, 0).positions()


class TestFixedWeight:
    @given(st.integers(min_value=1, max_value=8))
    @settings(max_examples=30)
    def test_weight_exact(self, w):
        model = FixedWeightErrors(w, seed=5)
        for _ in range(20):
            pos = model.sample(100)
            assert len(pos) == w
            assert len(set(pos)) == w

    def test_invalid_weight(self):
        with pytest.raises(ValueError):
            FixedWeightErrors(0)


class TestApplyError:
    def test_flip_lsb_of_last_byte(self):
        out = apply_error(b"\x00\x00", (0,))
        assert out == b"\x00\x01"

    def test_flip_msb_of_first_byte(self):
        out = apply_error(b"\x00\x00", (15,))
        assert out == b"\x80\x00"

    def test_double_flip_restores(self):
        frame = b"\xde\xad\xbe\xef"
        assert apply_error(apply_error(frame, (5,)), (5,)) == frame

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            apply_error(b"\x00", (8,))

    @given(st.binary(min_size=1, max_size=20),
           st.sets(st.integers(min_value=0, max_value=159), min_size=1, max_size=8))
    @settings(max_examples=100)
    def test_involution(self, frame, positions):
        positions = tuple(p for p in positions if p < len(frame) * 8)
        if not positions:
            return
        assert apply_error(apply_error(frame, positions), positions) == frame
