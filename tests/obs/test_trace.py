"""Trace spans: hierarchy, pickling across the pool, kill-and-resume.

Three layers.  The unit tests drive a :class:`Tracer` with an
injected clock and pin the record shape (ids, parents, ``rel``/
``dur``), the unattached-buffer -> :meth:`~Tracer.adopt` re-parenting
that carries worker spans across the process boundary, and the no-op
contract of the disabled path.  The integration test runs a real
pool campaign -- with a hard-killed worker, a mid-flight stop, and a
resumed second session appending to the same log -- and asserts the
*integrity invariant*: every ``trace.span`` record's parent resolves
to another span in the log, so the waterfall reassembles with no
orphans even though workers died and sessions restarted.
"""

from __future__ import annotations

import pickle

from repro.dist.faults import POOL_KILL, FaultPlan
from repro.dist.pool import ParallelCoordinator
from repro.obs import trace as obs_trace
from repro.obs.events import EventLog, read_events
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACE,
    Tracer,
    flatten_tree,
    span_tree,
    spans_from_events,
)
from repro.search.exhaustive import SearchConfig


class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now


class CollectingLog:
    """Event sink capturing emitted records in memory."""

    enabled = True

    def __init__(self) -> None:
        self.records: list[dict] = []

    def emit(self, event: str, **fields) -> None:
        self.records.append({"event": event, **fields})


class TestAttachedTracer:
    def test_nested_spans_record_hierarchy_and_timing(self):
        clock = FakeClock()
        log = CollectingLog()
        tracer = Tracer(events=log, clock=clock)
        with tracer.span("chunk", chunk=3) as root:
            clock.now += 1.0
            with tracer.span("stage", n=32):
                clock.now += 0.5
            clock.now += 0.25
        assert [r["name"] for r in log.records] == ["stage", "chunk"]
        stage, chunk = log.records
        assert all(r["event"] == "trace.span" for r in log.records)
        assert stage["parent"] == chunk["span"] == root.id
        assert chunk["parent"] is None
        assert stage["rel"] == 1.0 and stage["dur"] == 0.5
        assert chunk["rel"] == 0.0 and chunk["dur"] == 1.75
        assert stage["n"] == 32 and chunk["chunk"] == 3

    def test_start_end_handles_outlive_lexical_scope(self):
        clock = FakeClock()
        log = CollectingLog()
        tracer = Tracer(events=log, clock=clock)
        root = tracer.start("chunk", chunk=1)
        child = tracer.start("dispatch", parent=root.id)
        clock.now += 2.0
        child.annotate(outcome="ok")
        child.end()
        child.end()  # idempotent: no double record
        root.end()
        assert [r["name"] for r in log.records] == ["dispatch", "chunk"]
        assert log.records[0]["parent"] == root.id
        assert log.records[0]["outcome"] == "ok"
        assert len(log.records) == 2

    def test_span_ids_are_pid_scoped_and_unique(self):
        tracer = Tracer()
        ids = {tracer.start(f"s{i}").id for i in range(100)}
        assert len(ids) == 100
        assert all(":" in i for i in ids)


class TestWorkerShipping:
    def test_unattached_buffers_picklable_dicts(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)  # no event log: worker shape
        with tracer.span("chunk.compute", chunk=7):
            clock.now += 0.5
        spans = tracer.snapshot()
        assert len(spans) == 1 and spans[0]["name"] == "chunk.compute"
        assert tracer.snapshot() == []  # snapshot drains
        assert pickle.loads(pickle.dumps(spans)) == spans

    def test_adopt_reparents_roots_only(self):
        worker_clock = FakeClock()
        worker = Tracer(clock=worker_clock)
        with worker.span("chunk.compute"):
            with worker.span("screen.stage", n=16):
                worker_clock.now += 0.1
        shipped = pickle.loads(pickle.dumps(worker.snapshot()))

        log = CollectingLog()
        parent = Tracer(events=log)
        dispatch = parent.start("chunk.dispatch")
        parent.adopt(shipped, parent=dispatch.id)
        dispatch.end()
        by_name = {r["name"]: r for r in log.records}
        # The worker's root now hangs under the parent's dispatch span
        # and is marked remote; the stage span keeps its worker-local
        # parent, which still resolves inside the shipped set.
        assert by_name["chunk.compute"]["parent"] == dispatch.id
        assert by_name["chunk.compute"]["remote"] is True
        assert (
            by_name["screen.stage"]["parent"]
            == by_name["chunk.compute"]["span"]
        )

    def test_adopt_none_is_noop(self):
        log = CollectingLog()
        Tracer(events=log).adopt(None, parent="x")
        assert log.records == []


class TestDisabledPath:
    def test_null_trace_records_nothing(self):
        with NULL_TRACE.span("anything", x=1) as span:
            assert span is NULL_SPAN
            span.annotate(y=2)
        assert NULL_TRACE.start("s") is NULL_SPAN
        assert NULL_TRACE.snapshot() is None
        assert not NULL_TRACE.enabled

    def test_install_active_uninstall(self):
        tracer = Tracer()
        assert obs_trace.active() is NULL_TRACE
        previous = obs_trace.install(tracer)
        try:
            assert obs_trace.active() is tracer
        finally:
            obs_trace.install(previous)
        assert obs_trace.active() is NULL_TRACE


class TestTreeHelpers:
    def test_flatten_orphans_become_roots(self):
        spans = [
            {"span": "a:1", "parent": None, "name": "root"},
            {"span": "a:2", "parent": "a:1", "name": "child"},
            {"span": "a:3", "parent": "gone", "name": "orphan"},
        ]
        tree = span_tree(spans)
        assert [s["name"] for s in tree[None]] == ["root"]
        rows = flatten_tree(spans)
        assert [(d, s["name"]) for d, s in rows] == [
            (0, "root"), (1, "child"), (0, "orphan"),
        ]


CFG = SearchConfig(width=8, target_hd=4, filter_lengths=(16, 40, 100),
                   confirm_weights=False)


class TestKillAndResumeIntegrity:
    def test_span_parents_resolve_across_kill_and_resume(self, tmp_path):
        """A campaign with a hard-killed worker is stopped mid-flight,
        then resumed in a second session appending to the same event
        log.  Every span's parent must resolve within the log, every
        computed chunk must show the full lease->dispatch->compute
        waterfall, and the killed chunk's spans must be closed with an
        outcome instead of leaking open."""
        events_path = str(tmp_path / "run.jsonl")
        ckpt = str(tmp_path / "campaign.json")

        def make(**kw):
            return ParallelCoordinator(
                config=CFG, chunk_size=8, processes=2, lease_duration=0.5,
                max_seconds=120.0, checkpoint_path=ckpt,
                checkpoint_every=1, **kw,
            )

        with EventLog(events_path) as events:
            first = make(
                events=events, faults=FaultPlan(crash_points={POOL_KILL: 1})
            )
            assert first.collect_traces  # auto-on: events are attached
            first.run(stop_after=4)
        assert 0 < first.stats.completions < len(first.queue)

        with EventLog(events_path) as events:  # second session, appended
            resumed = make(events=events)
            resumed.resume()
            resumed.run()
        assert resumed.queue.all_done

        records = read_events(events_path)
        assert sum(r["event"] == "log.open" for r in records) == 2
        spans = spans_from_events(records)
        ids = {s["span"] for s in spans}
        assert len(ids) == len(spans), "span ids must be unique"

        # Integrity: every parent reference resolves inside the log.
        for span in spans:
            assert span["parent"] is None or span["parent"] in ids, span
        # Equivalent global statement: flattening loses nothing and
        # finds no orphaned subtrees.
        rows = flatten_tree(spans)
        assert len(rows) == len(spans)
        assert all(s["name"] == "chunk" for d, s in rows if d == 0)

        # Every computed (non-duplicate) chunk completion has the full
        # waterfall: root chunk -> dispatch -> remote compute.
        tree = span_tree(spans)
        computed = {
            r["chunk"]
            for r in records
            if r["event"] == "chunk.done" and not r.get("duplicate")
        }
        chunks_with_compute = set()
        for root in tree.get(None, []):
            children = tree.get(root["span"], [])
            names = {c["name"] for c in children}
            if "chunk.dispatch" in names:
                for c in children:
                    if c["name"] == "chunk.dispatch":
                        grand = tree.get(c["span"], [])
                        if any(
                            g["name"] == "chunk.compute"
                            and g.get("remote")
                            for g in grand
                        ):
                            chunks_with_compute.add(root.get("chunk"))
        assert computed <= chunks_with_compute

        # The hard-killed attempt's spans were closed with an outcome,
        # not leaked (the pool emits them when the future dies).
        outcomes = {s.get("outcome") for s in spans if "outcome" in s}
        assert outcomes & {"killed", "pool-broken", "crashed"}
        # And nothing is left open on either coordinator.
        assert first._chunk_spans == {} and resumed._chunk_spans == {}
