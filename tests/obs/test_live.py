"""Dashboard plumbing: torn-tail tailing, live folds, frame rendering.

The tail tests simulate the adversarial writer -- records appearing a
few bytes at a time, a final line torn mid-record, a log rotated out
from under the reader.  The render tests feed a synthetic (but
schema-faithful) campaign log and assert the acceptance surface: the
frame names throughput, workers and p95 latency, counts chunks in
flight, and draws the span waterfall.  ``run_dash`` is driven through
its ``out=`` hook so the rc-2 error paths and ``--once`` mode are
pinned without a TTY.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.events import SCHEMA_VERSION
from repro.obs.live import (
    Dashboard,
    EventTail,
    check_log_path,
    run_dash,
)


def jline(event: str, **fields) -> bytes:
    return json.dumps(
        {"v": SCHEMA_VERSION, "event": event, **fields}
    ).encode() + b"\n"


def campaign_log(path, *, spans: bool = True) -> None:
    """A faithful two-chunk campaign log, one in flight at the end."""
    chunks = [
        jline("log.open", t=0.0, pid=123),
        jline(
            "campaign.start", t=0.1, width=8, target_hd=4, final_length=100,
            chunk_size=8, chunks=4, processes=2,
        ),
        jline("lease.grant", t=0.2, chunk=0),
        jline("lease.grant", t=0.2, chunk=1),
        jline(
            "chunk.done", t=1.0, chunk=0, examined=8, survivors=1,
            seconds=0.5, stage_kills={"16": 7},
        ),
        jline("lease.grant", t=1.1, chunk=2),
        jline(
            "chunk.done", t=2.0, chunk=1, examined=8, survivors=0,
            seconds=0.9, stage_kills={"16": 8},
        ),
    ]
    if spans:
        chunks += [
            jline(
                "trace.span", t=2.1, name="chunk.compute", span="7b:2",
                parent="7b:1", rel=0.01, dur=0.8, remote=True,
            ),
            jline(
                "trace.span", t=2.1, name="chunk", span="7b:1",
                parent=None, rel=0.0, dur=0.9, chunk=1,
            ),
        ]
    path.write_bytes(b"".join(chunks))


class TestEventTail:
    def test_torn_tail_left_unconsumed_until_completed(self, tmp_path):
        log = tmp_path / "run.jsonl"
        whole = jline("log.open", t=0.0)
        log.write_bytes(whole + b'{"event": "chunk.d')  # writer mid-record
        tail = EventTail(log)
        assert [r["event"] for r in tail.poll()] == ["log.open"]
        assert tail.poll() == []  # torn tail still torn
        with open(log, "ab") as f:  # writer finishes the record
            f.write(b'one", "v": 1}\n')
        assert [r["event"] for r in tail.poll()] == ["chunk.done"]

    def test_incremental_appends(self, tmp_path):
        log = tmp_path / "run.jsonl"
        log.write_bytes(jline("log.open"))
        tail = EventTail(log)
        assert len(tail.poll()) == 1
        assert tail.poll() == []
        with open(log, "ab") as f:
            f.write(jline("lease.grant", chunk=0) + jline("chunk.done", chunk=0))
        assert [r["event"] for r in tail.poll()] == [
            "lease.grant",
            "chunk.done",
        ]

    def test_shrunk_log_restarts_from_zero(self, tmp_path):
        log = tmp_path / "run.jsonl"
        log.write_bytes(jline("log.open") + jline("chunk.done", chunk=0))
        tail = EventTail(log)
        assert len(tail.poll()) == 2
        log.write_bytes(jline("log.open"))  # rotated: fresh, shorter file
        assert [r["event"] for r in tail.poll()] == ["log.open"]

    def test_missing_file_is_quietly_empty(self, tmp_path):
        assert EventTail(tmp_path / "nope.jsonl").poll() == []

    def test_malformed_interior_line_raises(self, tmp_path):
        log = tmp_path / "bad.jsonl"
        log.write_bytes(b"this is not json\n")
        with pytest.raises(ValueError, match="not a JSONL event log"):
            EventTail(log).poll()

    def test_future_schema_raises(self, tmp_path):
        log = tmp_path / "future.jsonl"
        log.write_bytes(
            json.dumps(
                {"v": SCHEMA_VERSION + 1, "event": "log.open"}
            ).encode() + b"\n"
        )
        with pytest.raises(ValueError, match="newer than this reader"):
            EventTail(log).poll()


class TestDashboardRender:
    def test_frame_names_the_acceptance_surface(self, tmp_path):
        log = tmp_path / "run.jsonl"
        campaign_log(log)
        dash = Dashboard(log)
        assert dash.refresh() > 0
        frame = dash.render()
        assert "progress: [" in frame and "2/4 chunks" in frame
        assert "throughput:" in frame and "polys/s" in frame
        assert "p50=" in frame and "p95=" in frame and "p99=" in frame
        assert "workers: 2 configured" in frame
        assert "1 chunks in flight" in frame  # chunk 2 leased, not done
        assert "health:" in frame and "eta:" in frame

    def test_waterfall_shows_most_recent_root(self, tmp_path):
        log = tmp_path / "run.jsonl"
        campaign_log(log, spans=True)
        dash = Dashboard(log)
        dash.refresh()
        frame = dash.render()
        assert "last trace (chunk chunk=1" in frame
        assert "chunk.compute" in frame

    def test_no_spans_no_waterfall(self, tmp_path):
        log = tmp_path / "run.jsonl"
        campaign_log(log, spans=False)
        dash = Dashboard(log)
        dash.refresh()
        assert "last trace" not in dash.render()

    def test_in_flight_cleared_on_drain_and_new_session(self, tmp_path):
        log = tmp_path / "run.jsonl"
        log.write_bytes(
            jline("log.open")
            + jline("lease.grant", chunk=0)
            + jline("lease.grant", chunk=1)
            + jline("shutdown.drain", forfeited=2)
        )
        dash = Dashboard(log)
        dash.refresh()
        assert dash.in_flight == set()
        with open(log, "ab") as f:
            f.write(jline("log.open") + jline("lease.grant", chunk=0))
        dash.refresh()
        assert dash.in_flight == {0}

    def test_render_on_empty_records_is_harmless(self, tmp_path):
        frame = Dashboard(tmp_path / "never.jsonl").render(following=True)
        assert "following" in frame


class TestRunDash:
    def test_once_renders_single_frame(self, tmp_path):
        log = tmp_path / "run.jsonl"
        campaign_log(log)
        frames = []
        assert run_dash(str(log), out=frames.append) == 0
        assert len(frames) == 1
        assert "throughput:" in frames[0] and "p95=" in frames[0]

    def test_directory_is_always_rc2(self, tmp_path):
        msgs = []
        assert run_dash(str(tmp_path), out=msgs.append, follow=True) == 2
        assert "is a directory" in msgs[0]

    def test_missing_and_empty_are_rc2_unless_following(self, tmp_path):
        missing = str(tmp_path / "nope.jsonl")
        empty = tmp_path / "empty.jsonl"
        empty.touch()
        msgs = []
        assert run_dash(missing, out=msgs.append) == 2
        assert "no such file" in msgs[0]
        assert run_dash(str(empty), out=msgs.append) == 2
        assert "empty" in msgs[1]
        # In follow mode the campaign may simply not have started yet.
        frames = []
        assert (
            run_dash(missing, out=frames.append, follow=True, max_frames=2)
            == 0
        )
        assert len(frames) == 2

    def test_not_an_event_log_is_rc2(self, tmp_path):
        log = tmp_path / "noise.txt"
        log.write_text("hello world\n")
        msgs = []
        assert run_dash(str(log), out=msgs.append) == 2
        assert "not a JSONL event log" in msgs[0]

    def test_check_log_path_happy(self, tmp_path):
        log = tmp_path / "run.jsonl"
        campaign_log(log)
        assert check_log_path(str(log)) is None


class TestHostsRow:
    def farm_log(self, path, *, benched=True):
        tail = (
            jline("worker.benched", t=4.1, worker="wB", faults=1)
            if benched
            else b""
        )
        path.write_bytes(
            jline("log.open", t=0.0, pid=9)
            + jline(
                "campaign.start", t=0.1, width=8, target_hd=4,
                final_length=100, chunk_size=8, chunks=4,
            )
            + jline("worker.hello", t=0.2, worker="wA", host="alpha",
                    reconnect=False)
            + jline("worker.hello", t=0.3, worker="wB", host="beta",
                    reconnect=False)
            + jline("lease.grant", t=0.4, chunk=0, worker="wA")
            + jline("chunk.done", t=1.0, chunk=0, examined=8, survivors=0,
                    seconds=0.5, stage_kills={"16": 8}, worker="wA")
            + jline("lease.grant", t=1.1, chunk=1, worker="wB")
            # wB goes dark: the expiry is evidence of death, not life,
            # so its liveness frontier must stay at the lease grant.
            + jline("lease.expire", t=4.0, chunk=1, owner="wB", attempt=1,
                    worker="wB")
            + tail
        )

    def test_hosts_row_tracks_liveness_per_worker(self, tmp_path):
        log = tmp_path / "farm.jsonl"
        self.farm_log(log)
        dash = Dashboard(log)
        dash.refresh()
        frame = dash.render()
        assert "hosts:" in frame
        # Frontier is t=4.1 (the bench): wA last spoke at 1.0 (3.1s
        # ago), wB at its 1.1 lease grant (3.0s ago) -- NOT at the 4.0
        # expiry, which the server emitted about it, not from it.
        assert "wA 1ch (last chunk.done 3.1s ago)" in frame
        assert "wB 0ch (last worker.benched 0.0s ago) [benched]" in frame

    def test_expiry_does_not_advance_liveness(self, tmp_path):
        log = tmp_path / "farm.jsonl"
        self.farm_log(log, benched=False)
        dash = Dashboard(log)
        dash.refresh()
        # The t=4.0 expiry carried worker="wB" but is the server's
        # verdict on a silent worker; wB's frontier stays at its own
        # last frame, the t=1.1 lease request.
        assert dash.worker_last["wB"] == (1.1, "lease.grant")
        assert dash.worker_last["wA"] == (1.0, "chunk.done")

    def test_pool_logs_have_no_hosts_row(self, tmp_path):
        log = tmp_path / "run.jsonl"
        campaign_log(log)
        dash = Dashboard(log)
        dash.refresh()
        assert "hosts:" not in dash.render()
