"""Prometheus text rendering: name mangling, sample shapes, sum-match.

The load-bearing property is the last one: the ``+Inf`` bucket of
every rendered histogram equals its ``_count`` sample equals the
``count`` field of the registry snapshot the NDJSON ``metrics`` verb
returns -- both views read the same registry, so a scraper and an
NDJSON client can be reconciled number for number.
"""

from __future__ import annotations

import re

from repro.obs.hist import BUCKET_BOUNDS
from repro.obs.metrics import NULL_METRICS, MetricsRegistry
from repro.obs.prom import CONTENT_TYPE, metric_name, render_prometheus


def sample(text: str, name: str) -> float:
    for line in text.splitlines():
        if line.startswith(name + " "):
            return float(line.split()[1])
    raise AssertionError(f"no sample {name!r} in:\n{text}")


class TestNames:
    def test_dotted_to_underscore(self):
        assert metric_name("service.request.ping") == "service_request_ping"

    def test_illegal_chars_and_leading_digit(self):
        assert metric_name("0bad-name!x") == "_0bad_name_x"


class TestRendering:
    def test_disabled_registry_is_a_comment(self):
        text = render_prometheus(NULL_METRICS)
        assert text.startswith("#") and text.endswith("\n")
        assert "disabled" in text

    def test_empty_registry_is_a_comment(self):
        assert render_prometheus(MetricsRegistry()) == "# no metrics recorded\n"

    def test_counter_gauge_timer_shapes(self):
        reg = MetricsRegistry()
        reg.inc("service.request.ping", 3)
        reg.gauge("pool.workers", 4)
        with reg.time("service.latency.hd"):
            pass
        text = render_prometheus(reg)
        assert "# TYPE service_request_ping counter" in text
        assert sample(text, "service_request_ping") == 3
        assert "# TYPE pool_workers gauge" in text
        assert "# TYPE service_latency_hd summary" in text
        assert sample(text, "service_latency_hd_count") == 1
        assert text.endswith("\n")
        assert CONTENT_TYPE.startswith("text/plain")

    def test_histogram_buckets_cumulative_and_sum_match(self):
        reg = MetricsRegistry()
        values = [0.0005, 0.002, 0.002, 0.7, 100.0]  # last overflows
        for v in values:
            reg.observe_hist("service.latency.checksum", v)
        text = render_prometheus(reg)
        assert "# TYPE service_latency_checksum histogram" in text

        buckets = re.findall(
            r'service_latency_checksum_bucket\{le="([^"]+)"\} (\d+)', text
        )
        assert len(buckets) == len(BUCKET_BOUNDS) + 1
        counts = [int(n) for _, n in buckets]
        assert counts == sorted(counts), "bucket series must be cumulative"
        assert buckets[-1][0] == "+Inf"

        # The sum-match triangle: +Inf bucket == _count == snapshot count.
        snapshot = reg.snapshot()["hists"]["service.latency.checksum"]
        assert counts[-1] == len(values)
        assert sample(text, "service_latency_checksum_count") == len(values)
        assert snapshot["count"] == len(values)
        assert sum(snapshot["buckets"].values()) == len(values)
        assert sample(text, "service_latency_checksum_sum") == float(
            snapshot["sum"]
        )

    def test_le_labels_are_exact_bounds(self):
        reg = MetricsRegistry()
        reg.observe_hist("h", 0.001)
        text = render_prometheus(reg)
        for bound in BUCKET_BOUNDS:
            assert f'le="{bound!r}"' in text
