"""Run-report semantics, from synthetic event streams and from real
campaigns -- including the acceptance scenario: a killed-and-resumed
parallel campaign whose event log reconstructs what happened."""

from __future__ import annotations

import json

import pytest

from repro.dist.faults import POOL_KILL, FaultPlan
from repro.dist.pool import ParallelCoordinator
from repro.dist.coordinator import Coordinator
from repro.dist.worker import ChunkWorker
from repro.obs.events import EventLog, read_events
from repro.obs.report import RunReport
from repro.search.exhaustive import SearchConfig

CFG = SearchConfig(width=8, target_hd=4, filter_lengths=(16, 40, 100),
                   confirm_weights=False)
MAX_SECONDS = 120.0


def make_runner(events, **kwargs):
    kwargs.setdefault("config", CFG)
    kwargs.setdefault("chunk_size", 8)
    kwargs.setdefault("processes", 2)
    kwargs.setdefault("lease_duration", 0.5)
    kwargs.setdefault("max_seconds", MAX_SECONDS)
    return ParallelCoordinator(events=events, **kwargs)


def synthetic_stream():
    """A hand-written two-session log exercising every fold path."""
    return [
        {"v": 1, "seq": 0, "t": 0.0, "event": "log.open", "wall": 1e9, "pid": 1},
        {"v": 1, "seq": 1, "t": 0.0, "event": "campaign.start",
         "backend": "pool", "width": 8, "target_hd": 4, "final_length": 100,
         "chunk_size": 8, "chunks": 4, "processes": 2},
        {"v": 1, "seq": 2, "t": 0.1, "event": "lease.grant", "chunk": 0,
         "attempt": 1},
        {"v": 1, "seq": 3, "t": 0.2, "event": "lease.grant", "chunk": 1,
         "attempt": 1},
        {"v": 1, "seq": 4, "t": 2.0, "event": "chunk.done", "chunk": 0,
         "attempt": 1, "examined": 10, "survivors": 2, "seconds": 1.5,
         "stage_kills": {"16": 6, "100": 2}, "duplicate": False},
        {"v": 1, "seq": 5, "t": 2.1, "event": "chunk.done", "chunk": 0,
         "attempt": 1, "examined": 10, "survivors": 2, "seconds": 1.5,
         "stage_kills": {"16": 6, "100": 2}, "duplicate": True},
        {"v": 1, "seq": 6, "t": 2.5, "event": "lease.expire", "chunk": 1,
         "owner": "pool-parent", "attempt": 1},
        {"v": 1, "seq": 7, "t": 2.6, "event": "worker.crash", "chunk": 1,
         "kind": "killed"},
        {"v": 1, "seq": 8, "t": 2.7, "event": "pool.rebuild"},
        {"v": 1, "seq": 9, "t": 3.0, "event": "checkpoint.write",
         "path": "c.json", "chunks_done": 1},
        # Session 2: resumed after a kill.
        {"v": 1, "seq": 0, "t": 0.0, "event": "log.open", "wall": 2e9, "pid": 2},
        {"v": 1, "seq": 1, "t": 0.0, "event": "campaign.resume",
         "path": "c.json", "skipped": 1},
        {"v": 1, "seq": 2, "t": 0.0, "event": "campaign.start",
         "backend": "pool", "width": 8, "target_hd": 4, "final_length": 100,
         "chunk_size": 8, "chunks": 4, "processes": 2},
        {"v": 1, "seq": 3, "t": 0.5, "event": "lease.grant", "chunk": 1,
         "attempt": 2},
        {"v": 1, "seq": 4, "t": 1.0, "event": "chunk.done", "chunk": 1,
         "attempt": 2, "examined": 10, "survivors": 1, "seconds": 0.8,
         "stage_kills": {"16": 9}, "duplicate": False},
        {"v": 1, "seq": 5, "t": 1.5, "event": "chunk.done", "chunk": 2,
         "attempt": 1, "examined": 10, "survivors": 1, "seconds": 0.8,
         "stage_kills": {"40": 9}, "duplicate": False},
        {"v": 1, "seq": 6, "t": 2.0, "event": "chunk.done", "chunk": 3,
         "attempt": 1, "examined": 10, "survivors": 1, "seconds": 0.8,
         "stage_kills": {"40": 9}, "duplicate": False},
        {"v": 1, "seq": 7, "t": 2.2, "event": "lease.renew", "chunks": 2},
        {"v": 1, "seq": 8, "t": 3.0, "event": "metrics.snapshot",
         "metrics": {"counters": {"search.candidates": 40}, "gauges": {},
                     "timers": {}}},
        {"v": 1, "seq": 9, "t": 3.0, "event": "campaign.end", "elapsed": 3.0,
         "completions": 3, "examined": 40, "survivors": 5},
    ]


class TestFromSyntheticEvents:
    def test_counts_and_config(self):
        rep = RunReport.from_events(synthetic_stream())
        assert rep.sessions == 2
        assert rep.config["width"] == 8
        assert rep.total_chunks == 4
        assert rep.chunks_completed == 4          # chunk 0 once + 1,2,3
        assert rep.chunks_resumed == 1
        assert rep.duplicate_deliveries == 1      # the duplicate is skipped
        assert rep.candidates_examined == 40
        assert rep.survivors == 5
        assert rep.complete

    def test_fault_and_lease_accounting(self):
        rep = RunReport.from_events(synthetic_stream())
        assert rep.lease_grants == 3
        assert rep.lease_renewals == 2
        assert rep.lease_expiries == 1
        assert rep.lease_expiry_rate == pytest.approx(1 / 3)
        assert rep.worker_crashes == 1
        assert rep.pool_rebuilds == 1
        assert rep.checkpoint_writes == 1

    def test_throughput_and_sessions(self):
        rep = RunReport.from_events(synthetic_stream())
        # Session walls: 3.0s + 3.0s observed.
        assert rep.active_seconds == pytest.approx(6.0)
        assert rep.polys_per_second == pytest.approx(40 / 6.0)
        assert rep.busy_seconds == pytest.approx(1.5 + 0.8 * 3)

    def test_bailout_efficiency_excludes_final_length(self):
        rep = RunReport.from_events(synthetic_stream())
        # Kills: 6@16 + 2@100(final) + 9@16 + 9@40 + 9@40.
        assert rep.stage_kills == {16: 15, 40: 18, 100: 2}
        assert rep.bailout_efficiency == pytest.approx((15 + 18) / 40)

    def test_estimator_replay_survives_session_restart(self):
        # Session 2 timestamps restart at 0 -- the fold must not feed a
        # regressed clock into ProgressTracker.
        rep = RunReport.from_events(synthetic_stream())
        assert rep.estimator_rate is not None and rep.estimator_rate > 0
        assert rep.estimator_eta_seconds == 0.0  # campaign finished

    def test_metrics_snapshot_merged(self):
        rep = RunReport.from_events(synthetic_stream())
        assert rep.metrics.counters["search.candidates"] == 40

    def test_bench_envelope(self, tmp_path):
        rep = RunReport.from_events(synthetic_stream())
        bench = rep.to_bench_dict(name="unit")
        assert bench["bench"] == "unit"
        assert bench["schema"] == 1
        assert bench["config"]["chunks"] == 4
        assert bench["metrics"]["candidates_examined"] == 40
        assert bench["metrics"]["lease_expiries"] == 1
        path = tmp_path / "BENCH_unit.json"
        rep.write_bench_json(path, name="unit")
        assert json.loads(path.read_text()) == bench

    def test_empty_stream_renders_without_error(self):
        rep = RunReport.from_events([])
        assert not rep.complete
        assert rep.polys_per_second == 0.0
        assert rep.lease_expiry_rate == 0.0
        assert "run report" in rep.render()


class TestRealCampaigns:
    def test_clean_pool_run_report_matches_coordinator(self, tmp_path):
        log_path = tmp_path / "run.jsonl"
        with EventLog(log_path) as events:
            runner = make_runner(events, collect_metrics=True)
            elapsed = runner.run()
        rep = RunReport.from_path(log_path)
        assert rep.complete
        assert rep.total_chunks == len(runner.queue)
        assert rep.chunks_completed == runner.stats.completions
        assert rep.candidates_examined == runner.campaign.candidates_examined
        assert rep.survivors == len(runner.campaign.survivors)
        own = runner.campaign.candidates_examined / elapsed
        assert rep.polys_per_second == pytest.approx(own, rel=0.10)
        # Worker metrics rode home and agree with the event totals.
        assert rep.metrics.counters["search.candidates"] == \
            rep.candidates_examined

    def test_simulated_coordinator_uses_same_vocabulary(self, tmp_path):
        log_path = tmp_path / "sim.jsonl"
        with EventLog(log_path) as events:
            coord = Coordinator(config=CFG, chunk_size=8, events=events)
            coord.run([ChunkWorker(f"w{i}", CFG) for i in range(3)])
            coord.save_checkpoint(str(tmp_path / "c.json"))
        rep = RunReport.from_path(log_path)
        assert rep.config["backend"] == "simulated"
        assert rep.complete
        assert rep.candidates_examined == coord.campaign.candidates_examined
        assert rep.checkpoint_writes == 1

    def test_acceptance_killed_and_resumed_campaign(self, tmp_path):
        """ISSUE acceptance: a --parallel 2 campaign with a hard-killed
        (SIGKILL) worker, resumed into the same event log; the report
        reconstructs the whole story from the log alone.

        Session 1 runs to completion *through* the kill: finishing
        requires the killed chunk's lease to expire and be re-leased,
        so `lease.expire` is guaranteed in the log.  Session 2 is the
        resume, skipping everything from the checkpoint."""
        log_path = tmp_path / "run.jsonl"
        ckpt = str(tmp_path / "campaign.json")

        with EventLog(log_path) as events:
            first = make_runner(
                events,
                faults=FaultPlan(crash_points={POOL_KILL: 1}),
                checkpoint_path=ckpt,
                checkpoint_every=4,
            )
            e1 = first.run()
        assert first.stats.pool_rebuilds >= 1   # the kill really happened
        examined_1 = first.campaign.candidates_examined

        with EventLog(log_path) as events:  # second session, same file
            second = make_runner(events, checkpoint_path=ckpt)
            second.resume()
            at_resume = second.campaign.candidates_examined
            e2 = second.run()
        examined_2 = second.campaign.candidates_examined - at_resume

        rep = RunReport.from_path(log_path)
        # -- structure reconstructed from the log alone --
        assert rep.sessions == 2
        assert rep.total_chunks == len(second.queue)
        assert rep.complete
        assert rep.chunks_resumed == second.stats.skipped_from_checkpoint
        assert rep.lease_expiries >= 1          # the killed worker's chunk
        assert rep.worker_crashes >= 1
        assert rep.pool_rebuilds >= 1
        assert rep.checkpoint_writes >= 1
        # Every computed delivery is in the log: session 1's chunks plus
        # whatever session 2 had to (re)compute.
        assert rep.candidates_examined == examined_1 + examined_2
        # -- throughput agrees with the coordinators' own accounting --
        own = (examined_1 + examined_2) / (e1 + e2)
        assert rep.polys_per_second == pytest.approx(own, rel=0.10)
        # -- and the human rendering mentions the interesting parts --
        text = rep.render()
        assert "resumed from checkpoint" in text
        assert "expired" in text and "complete" in text

    def test_midflight_stop_resume_accounting(self, tmp_path):
        """A campaign torn down mid-flight (the operator's kill) and
        resumed finishes with consistent cross-session accounting."""
        log_path = tmp_path / "run.jsonl"
        ckpt = str(tmp_path / "campaign.json")

        with EventLog(log_path) as events:
            first = make_runner(events, checkpoint_path=ckpt,
                                checkpoint_every=1)
            e1 = first.run(stop_after=6)
        assert 0 < first.stats.completions < len(first.queue)
        examined_1 = first.campaign.candidates_examined

        with EventLog(log_path) as events:
            second = make_runner(events, checkpoint_path=ckpt)
            second.resume()
            at_resume = second.campaign.candidates_examined
            e2 = second.run()
        examined_2 = second.campaign.candidates_examined - at_resume
        assert examined_2 > 0                   # real work left to do

        rep = RunReport.from_path(log_path)
        assert rep.sessions == 2
        assert rep.complete
        assert rep.chunks_completed == (
            first.stats.completions + second.stats.completions
        )
        assert rep.chunks_resumed == second.stats.skipped_from_checkpoint
        assert rep.candidates_examined == examined_1 + examined_2
        own = (examined_1 + examined_2) / (e1 + e2)
        assert rep.polys_per_second == pytest.approx(own, rel=0.10)

    def test_events_off_by_default_writes_nothing(self, tmp_path, monkeypatch):
        from repro.obs.events import NULL_EVENTS

        monkeypatch.chdir(tmp_path)
        runner = ParallelCoordinator(config=CFG, chunk_size=8, processes=2,
                                     max_seconds=MAX_SECONDS)
        assert runner.events is NULL_EVENTS     # the default sink
        assert runner.collect_metrics is False
        runner.run()
        assert runner.queue.all_done
        assert list(tmp_path.iterdir()) == []   # no log, no side files
        assert runner.metrics.counters == {}    # no worker snapshots


class TestSurvivalEvents:
    """The survival-kit vocabulary folds into the report."""

    def _stream(self):
        return [
            {"v": 1, "seq": 0, "t": 0.0, "event": "log.open",
             "wall": 1e9, "pid": 1},
            {"v": 1, "seq": 1, "t": 0.0, "event": "campaign.start",
             "backend": "pool", "width": 8, "target_hd": 4,
             "final_length": 100, "chunk_size": 8, "chunks": 4,
             "processes": 2},
            {"v": 1, "seq": 2, "t": 0.2, "event": "lease.backoff",
             "chunk": 1, "attempt": 1, "delay": 0.05},
            {"v": 1, "seq": 3, "t": 0.5, "event": "chunk.quarantine",
             "chunk": 1, "attempts": 3},
            {"v": 1, "seq": 4, "t": 0.6, "event": "shutdown.drain",
             "signal": "SIGTERM", "delivered": 1, "forfeited": 2,
             "grace": 5.0},
            {"v": 1, "seq": 5, "t": 0.7, "event": "campaign.interrupted",
             "signal": "SIGTERM", "elapsed": 0.7, "completions": 1,
             "examined": 8},
            # Session 2: resume re-announces the checkpoint-restored
            # quarantine and reports the corrupt current generation.
            {"v": 1, "seq": 0, "t": 0.0, "event": "log.open",
             "wall": 1e9, "pid": 2},
            {"v": 1, "seq": 1, "t": 0.0, "event": "checkpoint.corrupt",
             "path": "c.json", "fallback": "c.json.prev", "error": "crc"},
            {"v": 1, "seq": 2, "t": 0.1, "event": "chunk.quarantine",
             "chunk": 1, "attempts": 0, "restored": True},
            {"v": 1, "seq": 3, "t": 0.2, "event": "campaign.resume",
             "path": "c.json.prev", "skipped": 1, "quarantined": 1},
        ]

    def test_counters_fold(self):
        rep = RunReport.from_events(self._stream())
        assert rep.retry_backoffs == 1
        assert rep.quarantined_chunks == 1  # restored=True not re-counted
        assert rep.interruptions == 1
        assert rep.drain_forfeits == 2
        assert rep.checkpoint_corruptions == 1
        assert rep.sessions == 2
        # campaign.interrupted carries the session's elapsed time.
        assert rep.active_seconds == pytest.approx(0.7 + 0.2)

    def test_render_and_bench_mention_survival_lines(self, tmp_path):
        rep = RunReport.from_events(self._stream())
        text = rep.render()
        assert "quarantine: 1 chunks" in text
        assert "1 graceful drains" in text
        assert "1 corruption fallbacks" in text
        bench = rep.to_bench_dict()["metrics"]
        assert bench["quarantined_chunks"] == 1
        assert bench["interruptions"] == 1
        assert bench["checkpoint_corruptions"] == 1
        assert bench["retry_backoffs"] == 1


def farm_stream():
    """A synthetic farm-coordinator log: two worker hosts, one
    reconnect, one expiry-then-bench, worker-tagged completions."""
    base = {"v": 1, "t": 0.0}
    recs = [
        {**base, "seq": 0, "event": "log.open", "wall": 1e9, "pid": 1},
        {**base, "seq": 1, "event": "campaign.start", "backend": "net",
         "width": 8, "target_hd": 4, "final_length": 100, "chunk_size": 8,
         "chunks": 4},
        {**base, "seq": 2, "t": 0.1, "event": "worker.hello", "worker": "wA",
         "host": "alpha", "reconnect": False},
        {**base, "seq": 3, "t": 0.1, "event": "worker.hello", "worker": "wB",
         "host": "beta", "reconnect": False},
        {**base, "seq": 4, "t": 0.2, "event": "lease.grant", "chunk": 0,
         "attempt": 1, "worker": "wA"},
        {**base, "seq": 5, "t": 1.0, "event": "chunk.done", "chunk": 0,
         "attempt": 1, "examined": 8, "survivors": 1, "seconds": 0.5,
         "stage_kills": {"16": 7}, "duplicate": False, "worker": "wA"},
        # wB strands a lease, reconnects, then redelivers a duplicate.
        {**base, "seq": 6, "t": 1.1, "event": "lease.grant", "chunk": 1,
         "attempt": 1, "worker": "wB"},
        {**base, "seq": 7, "t": 1.8, "event": "lease.expire", "chunk": 1,
         "owner": "wB", "attempt": 1},
        {**base, "seq": 8, "t": 1.9, "event": "worker.hello", "worker": "wB",
         "host": "beta", "reconnect": True},
        {**base, "seq": 9, "t": 2.0, "event": "worker.lease_lost",
         "worker": "wB", "chunk": 1, "reason": "lease expired"},
        {**base, "seq": 10, "t": 2.1, "event": "lease.grant", "chunk": 1,
         "attempt": 2, "worker": "wA"},
        {**base, "seq": 11, "t": 2.9, "event": "chunk.done", "chunk": 1,
         "attempt": 2, "examined": 8, "survivors": 0, "seconds": 0.7,
         "stage_kills": {"16": 8}, "duplicate": False, "worker": "wA"},
        {**base, "seq": 12, "t": 3.0, "event": "chunk.done", "chunk": 1,
         "attempt": 1, "examined": 8, "survivors": 0, "seconds": 0.7,
         "stage_kills": {"16": 8}, "duplicate": True, "worker": "wB"},
        {**base, "seq": 13, "t": 3.1, "event": "worker.benched",
         "worker": "wB", "faults": 1},
        {**base, "seq": 14, "t": 4.0, "event": "campaign.end", "chunks": 4,
         "elapsed": 4.0},
    ]
    return recs


class TestWorkerAccounting:
    def test_farm_events_fold_into_per_host_books(self):
        report = RunReport.from_events(farm_stream())
        assert set(report.workers) == {"wA", "wB"}
        wa, wb = report.workers["wA"], report.workers["wB"]
        # wA did all the merged work, including the retry of chunk 1.
        assert wa == {
            "host": "alpha", "chunks": 2, "examined": 16,
            "seconds": pytest.approx(1.2), "connections": 1,
            "reconnects": 0, "lease_losses": 0, "expiries": 0,
            "benched": False,
        }
        # wB's duplicate never counts as a chunk; its expiry, lost
        # lease, reconnect and benching all land on its book.
        assert wb["chunks"] == 0 and wb["examined"] == 0
        assert wb["connections"] == 2 and wb["reconnects"] == 1
        assert wb["expiries"] == 1 and wb["lease_losses"] == 1
        assert wb["benched"] is True
        assert wb["host"] == "beta"

    def test_pool_campaign_has_no_worker_books(self):
        report = RunReport.from_events(synthetic_stream())
        assert report.workers == {}
        assert "workers:" not in report.render()

    def test_render_and_bench_dict_surface_the_books(self):
        report = RunReport.from_events(farm_stream())
        rendered = report.render()
        assert "workers: 2 host(s)" in rendered
        assert "benched" in rendered
        bench = report.to_bench_dict()
        workers = bench["metrics"]["workers"]
        assert workers["wA"]["chunks"] == 2
        assert workers["wA"]["seconds"] == pytest.approx(1.2)
        assert workers["wB"]["benched"] is True
        json.dumps(bench)  # still plain JSON
