"""Metrics registry semantics: recording, merge, active-registry
installation, and the disabled path's no-op guarantee."""

from __future__ import annotations

import pickle
import timeit

from repro.obs import metrics as obs_metrics
from repro.obs.metrics import (
    NULL_METRICS,
    MetricsRegistry,
    NullMetrics,
    TimerStat,
    active,
    install,
    uninstall,
)


class TestRecording:
    def test_counters_accumulate(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 4)
        reg.inc("b", 2)
        assert reg.counters == {"a": 5, "b": 2}

    def test_gauges_keep_latest(self):
        reg = MetricsRegistry()
        reg.gauge("depth", 3.0)
        reg.gauge("depth", 1.5)
        assert reg.gauges == {"depth": 1.5}

    def test_timers_aggregate_count_total_min_max(self):
        reg = MetricsRegistry()
        for s in (0.2, 0.1, 0.4):
            reg.observe("work", s)
        t = reg.timers["work"]
        assert t.count == 3
        assert abs(t.total - 0.7) < 1e-9
        assert t.min == 0.1 and t.max == 0.4
        assert abs(t.mean - 0.7 / 3) < 1e-9

    def test_time_context_manager_observes_body(self):
        reg = MetricsRegistry()
        with reg.time("body"):
            pass
        assert reg.timers["body"].count == 1
        assert reg.timers["body"].total >= 0.0

    def test_time_records_even_when_body_raises(self):
        reg = MetricsRegistry()
        try:
            with reg.time("boom"):
                raise RuntimeError
        except RuntimeError:
            pass
        assert reg.timers["boom"].count == 1


class TestSnapshotAndMerge:
    def test_snapshot_is_plain_picklable_data(self):
        reg = MetricsRegistry()
        reg.inc("c", 3)
        reg.gauge("g", 7.0)
        reg.observe("t", 0.25)
        snap = reg.snapshot()
        assert pickle.loads(pickle.dumps(snap)) == snap
        assert snap["counters"] == {"c": 3}
        assert snap["timers"]["t"]["count"] == 1

    def test_merge_adds_counters_and_timers_lastwrites_gauges(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("n", 2); a.gauge("g", 1.0); a.observe("t", 0.1)
        b.inc("n", 3); b.gauge("g", 9.0); b.observe("t", 0.3)
        a.merge(b.snapshot())
        assert a.counters["n"] == 5
        assert a.gauges["g"] == 9.0
        t = a.timers["t"]
        assert t.count == 2 and t.min == 0.1 and t.max == 0.3

    def test_merge_accepts_registry_none_and_empty(self):
        a = MetricsRegistry()
        a.inc("n")
        a.merge(None)          # worker shipped nothing
        a.merge(MetricsRegistry())
        a.merge({})            # degenerate snapshot
        assert a.counters == {"n": 1}

    def test_merge_order_independent_for_counters_timers(self):
        """Session snapshots merged in any order give the same totals
        -- the property the killed-and-resumed campaign relies on."""
        snaps = []
        for k in range(3):
            reg = MetricsRegistry()
            reg.inc("c", k + 1)
            reg.observe("t", 0.1 * (k + 1))
            snaps.append(reg.snapshot())
        fwd, rev = MetricsRegistry(), MetricsRegistry()
        for s in snaps:
            fwd.merge(s)
        for s in reversed(snaps):
            rev.merge(s)
        assert fwd.counters == rev.counters
        assert fwd.timers == rev.timers

    def test_timerstat_round_trips_through_dict(self):
        t = TimerStat()
        t.observe(0.5)
        t.observe(0.1)
        assert TimerStat.from_dict(t.to_dict()) == t
        empty = TimerStat.from_dict(TimerStat().to_dict())
        empty.observe(2.0)  # from_dict of empty must keep min semantics
        assert empty.min == 2.0

    def test_render_mentions_every_metric(self):
        reg = MetricsRegistry()
        reg.inc("hits", 2)
        reg.gauge("level", 0.5)
        reg.observe("lap", 0.01)
        out = reg.render()
        assert "hits = 2" in out and "level" in out and "lap:" in out
        assert MetricsRegistry().render() == "  (no metrics recorded)"


class TestActiveRegistry:
    def teardown_method(self):
        uninstall()

    def test_default_is_the_shared_null(self):
        assert active() is NULL_METRICS
        assert active().enabled is False

    def test_install_takes_effect_and_returns_previous(self):
        reg = MetricsRegistry()
        assert install(reg) is NULL_METRICS
        assert active() is reg
        previous = install(MetricsRegistry())
        assert previous is reg
        uninstall()
        assert active() is NULL_METRICS

    def test_hot_path_records_through_active(self):
        from repro.search.exhaustive import SearchConfig, search_chunk

        cfg = SearchConfig(width=6, target_hd=3, filter_lengths=(16,),
                           confirm_weights=False)
        reg = MetricsRegistry()
        install(reg)
        try:
            res = search_chunk(cfg, 0, 8)
        finally:
            uninstall()
        assert reg.counters["search.candidates"] == res.examined
        assert reg.timers["search.chunk_seconds"].count == 1


class TestDisabledPath:
    def test_null_records_nothing_and_returns_nothing(self):
        n = NullMetrics()
        n.inc("x"); n.gauge("x", 1.0); n.observe("x", 1.0)
        with n.time("x"):
            pass
        assert n.snapshot() is None
        assert not hasattr(n, "counters")

    def test_disabled_hot_path_leaves_no_trace(self):
        from repro.search.exhaustive import SearchConfig, search_chunk

        assert active() is NULL_METRICS
        cfg = SearchConfig(width=6, target_hd=3, filter_lengths=(16,),
                           confirm_weights=False)
        search_chunk(cfg, 0, 8)
        assert active() is NULL_METRICS  # nothing installed itself

    def test_noop_overhead_is_nanoseconds_not_microseconds(self):
        """The disabled path must stay cheap enough to call
        unconditionally: bound a no-op inc() against a pure-python
        no-op function call, generously."""
        def plain():  # baseline: cheapest possible call
            pass

        n = 100_000
        noop = timeit.timeit(lambda: NULL_METRICS.inc("x"), number=n) / n
        base = timeit.timeit(plain, number=n) / n
        # A bound no-op method should be within ~20x of an empty
        # function call (typically ~2-3x); a real registry would blow
        # far past this the moment dict updates were involved.
        assert noop < base * 20 + 1e-6
