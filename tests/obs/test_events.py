"""Event-log round-trip, session, and durability semantics."""

from __future__ import annotations

import json

import pytest

from repro.obs.events import (
    NULL_EVENTS,
    SCHEMA_VERSION,
    EventLog,
    NullEventLog,
    iter_events,
    read_events,
)


class FakeClock:
    """Deterministic monotonic clock for timestamp assertions."""

    def __init__(self) -> None:
        self.now = 100.0

    def tick(self, dt: float) -> None:
        self.now += dt

    def __call__(self) -> float:
        return self.now


class TestRoundTrip:
    def test_emit_then_read_preserves_payload(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with EventLog(path) as log:
            log.emit("chunk.done", chunk=3, examined=9,
                     stage_kills={"16": 5}, duplicate=False)
        records = read_events(path)
        assert [r["event"] for r in records] == ["log.open", "chunk.done"]
        done = records[1]
        assert done["chunk"] == 3
        assert done["examined"] == 9
        assert done["stage_kills"] == {"16": 5}
        assert done["duplicate"] is False

    def test_every_record_is_versioned_and_sequenced(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with EventLog(path) as log:
            for _ in range(3):
                log.emit("x")
        records = read_events(path)
        assert [r["v"] for r in records] == [SCHEMA_VERSION] * 4
        assert [r["seq"] for r in records] == [0, 1, 2, 3]

    def test_timestamps_are_session_relative_monotonic(self, tmp_path):
        clock = FakeClock()
        path = tmp_path / "run.jsonl"
        log = EventLog(path, clock=clock)
        clock.tick(1.5)
        log.emit("a")
        clock.tick(2.0)
        log.emit("b")
        log.close()
        ts = [r["t"] for r in read_events(path)]
        assert ts == [0.0, 1.5, 3.5]  # relative to log.open, not epoch

    def test_open_record_carries_wall_anchor_and_pid(self, tmp_path):
        path = tmp_path / "run.jsonl"
        EventLog(path).close()
        head = read_events(path)[0]
        assert head["event"] == "log.open"
        assert head["wall"] > 1_000_000_000  # epoch seconds, not monotonic
        assert head["pid"] > 0
        assert head["schema"] == SCHEMA_VERSION


class TestSessions:
    def test_reopen_appends_a_second_session(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with EventLog(path) as log:
            log.emit("campaign.start")
        with EventLog(path) as log:  # the killed-and-resumed pattern
            log.emit("campaign.resume")
        records = read_events(path)
        opens = [i for i, r in enumerate(records) if r["event"] == "log.open"]
        assert len(opens) == 2
        # seq restarts with the session.
        assert records[opens[1]]["seq"] == 0

    def test_emit_after_close_is_dropped_not_an_error(self, tmp_path):
        log = EventLog(tmp_path / "run.jsonl")
        log.close()
        log.emit("late")  # must not raise
        assert [r["event"] for r in read_events(tmp_path / "run.jsonl")] == [
            "log.open"
        ]


class TestDurability:
    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with EventLog(path) as log:
            log.emit("chunk.done", chunk=1)
        with open(path, "a", encoding="utf-8") as f:
            f.write('{"v":1,"seq":2,"t":9.9,"event":"chunk.do')  # SIGKILL
        records = read_events(path)
        assert [r["event"] for r in records] == ["log.open", "chunk.done"]

    def test_mid_file_garbage_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        with EventLog(path) as log:
            log.emit("a")
        text = path.read_text().replace('"event":"a"', '"event:&&&')
        path.write_text(text + '{"v":1,"seq":9,"t":1,"event":"b"}\n')
        with pytest.raises(ValueError, match="not a JSONL event record"):
            read_events(path)

    def test_non_event_json_raises(self, tmp_path):
        path = tmp_path / "notlog.jsonl"
        path.write_text('{"hello": 1}\n{"hello": 2}\n')
        with pytest.raises(ValueError, match="not an event record"):
            read_events(path)

    def test_newer_schema_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        rec = {"v": SCHEMA_VERSION + 1, "seq": 0, "t": 0, "event": "log.open"}
        path.write_text(json.dumps(rec) + "\n" + json.dumps(rec) + "\n")
        with pytest.raises(ValueError, match="newer"):
            read_events(path)

    def test_iter_events_streams(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with EventLog(path) as log:
            log.emit("a")
        it = iter_events(path)
        assert next(it)["event"] == "log.open"
        assert next(it)["event"] == "a"
        with pytest.raises(StopIteration):
            next(it)


class TestNullSink:
    def test_null_is_disabled_and_inert(self, tmp_path):
        assert NULL_EVENTS.enabled is False
        assert isinstance(NULL_EVENTS, NullEventLog)
        # No file, no error, context-manageable.
        with NULL_EVENTS as sink:
            sink.emit("anything", arbitrary="payload")
        NULL_EVENTS.close()
        assert list(tmp_path.iterdir()) == []

    def test_real_log_is_a_null_log_substitute(self, tmp_path):
        # Call sites type against NullEventLog; EventLog must satisfy it.
        assert issubclass(EventLog, NullEventLog)
        assert EventLog(tmp_path / "x.jsonl").enabled is True
