"""Fixed-bucket log2 histograms: the bucket-exact merge contract.

The whole point of fixing the bucket bounds (never adapting them to
the data) is that a histogram built from a concatenated sample equals
the merge of histograms built from any split of that sample -- bucket
for bucket, not just approximately.  That is what lets the campaign
pool merge worker snapshots the same way it merges counters.
Hypothesis drives the property over random samples and random splits;
the deterministic tests pin quantile semantics and the dict round
trip the pool actually ships across the process boundary.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.hist import (
    BUCKET_BOUNDS,
    NUM_BUCKETS,
    Histogram,
    bucket_upper_bounds,
)
from repro.obs.metrics import MetricsRegistry

#: Durations from a tenth of the smallest bucket to beyond the
#: overflow bucket, plus exact zero.  (Sub-nanosecond values are not
#: representable through the dict snapshot, whose fields round at 9
#: decimals -- that scale is measurement noise, not latency.)
durations = st.one_of(
    st.just(0.0),
    st.floats(
        min_value=1e-7,
        max_value=200.0,
        allow_nan=False,
        allow_infinity=False,
    ),
)


def hist_of(values):
    h = Histogram()
    h.observe_many(values)
    return h


def assert_bucket_exact(a: Histogram, b: Histogram) -> None:
    """Bucket-exactness: counts and bucket occupancies are
    *identical*; min/max/sum are float fields (rounded at 9 decimals
    by the dict snapshot, accumulation-order sensitive for sum), so
    they compare approximately."""
    assert a.buckets == b.buckets
    assert a.count == b.count
    if a.count:
        assert a.min == pytest.approx(b.min, abs=1e-9)
        assert a.max == pytest.approx(b.max, abs=1e-9)
    assert a.sum == pytest.approx(b.sum, abs=1e-6)


class TestBuckets:
    def test_scheme_shape(self):
        assert BUCKET_BOUNDS[0] == 2.0**-20
        assert BUCKET_BOUNDS[-1] == 64.0
        assert NUM_BUCKETS == len(BUCKET_BOUNDS) + 1
        assert bucket_upper_bounds() == BUCKET_BOUNDS

    def test_observation_lands_in_covering_bucket(self):
        h = Histogram()
        h.observe(0.001)  # 2^-10 == 0.0009765625 < 0.001 <= 2^-9
        idx = next(i for i, n in enumerate(h.buckets) if n)
        lo = BUCKET_BOUNDS[idx - 1] if idx else 0.0
        hi = BUCKET_BOUNDS[idx]
        assert lo < 0.001 <= hi

    def test_overflow_and_negative_clamp(self):
        h = hist_of([1000.0, -5.0])
        assert h.buckets[-1] == 1  # beyond 64s -> +Inf bucket
        assert h.buckets[0] == 1  # negative clamps to 0 -> first bucket
        assert h.min == 0.0 and h.max == 1000.0

    def test_empty(self):
        h = Histogram()
        assert h.count == 0 and h.p50 == 0.0 and h.mean == 0.0
        assert h.to_dict()["buckets"] == {}


class TestQuantiles:
    def test_quantiles_bounded_by_observations(self):
        h = hist_of([0.001, 0.002, 0.004, 0.1, 2.0])
        for q in (0.0, 0.25, 0.5, 0.95, 0.99, 1.0):
            assert h.min <= h.quantile(q) <= h.max

    def test_quantiles_monotone(self):
        h = hist_of([0.0001 * (i + 1) for i in range(100)])
        qs = [h.quantile(q / 20) for q in range(21)]
        assert qs == sorted(qs)

    def test_out_of_range_rejected(self):
        h = hist_of([0.1])
        with pytest.raises(ValueError, match="quantile"):
            h.quantile(1.5)

    def test_single_observation_is_every_quantile(self):
        h = hist_of([0.017])
        assert h.p50 == h.p95 == h.p99 == 0.017


class TestMergeExactness:
    @settings(max_examples=100, deadline=None)
    @given(
        values=st.lists(durations, min_size=0, max_size=200),
        cut=st.integers(min_value=0, max_value=200),
    )
    def test_two_way_split_merges_bucket_exact(self, values, cut):
        """hist(a + b) == merge(hist(a), hist(b)) for any split point --
        the worker-snapshot -> parent-merge shape."""
        cut = min(cut, len(values))
        merged = hist_of(values[:cut])
        merged.merge(hist_of(values[cut:]))
        assert_bucket_exact(merged, hist_of(values))

    @settings(max_examples=50, deadline=None)
    @given(
        parts=st.lists(
            st.lists(durations, min_size=0, max_size=50),
            min_size=1,
            max_size=8,
        )
    )
    def test_many_way_merge_through_dict_snapshots(self, parts):
        """N workers each snapshot to a plain dict; the parent merges
        the dicts.  Equal to one histogram over everything, bucket for
        bucket -- and pickle (the real pool transport) changes nothing."""
        parent = Histogram()
        for part in parts:
            snap = pickle.loads(pickle.dumps(hist_of(part).to_dict()))
            parent.merge(snap)
        assert_bucket_exact(
            parent, hist_of([v for part in parts for v in part])
        )

    @settings(max_examples=50, deadline=None)
    @given(
        a=st.lists(durations, min_size=0, max_size=50),
        b=st.lists(durations, min_size=0, max_size=50),
    )
    def test_merge_commutes(self, a, b):
        ab = hist_of(a)
        ab.merge(hist_of(b))
        ba = hist_of(b)
        ba.merge(hist_of(a))
        assert ab == ba

    def test_registry_level_merge(self):
        """The full cross-process path at registry granularity:
        worker registries observe into hists, snapshot, parent merges
        -- counts, buckets and extremes all add exactly."""
        parent = MetricsRegistry()
        all_values = []
        for worker_values in ([0.001, 0.5, 3.0], [0.002], []):
            worker = MetricsRegistry()
            for v in worker_values:
                worker.observe_hist("chunk.seconds", v)
            parent.merge(worker.snapshot())
            all_values.extend(worker_values)
        assert_bucket_exact(parent.hists["chunk.seconds"], hist_of(all_values))

    def test_old_snapshots_without_hists_still_merge(self):
        """Snapshots from before histograms existed carry no 'hists'
        key; merging them must keep working (mixed-version fleets)."""
        parent = MetricsRegistry()
        parent.observe_hist("chunk.seconds", 0.1)
        parent.merge({"counters": {"x": 1}, "gauges": {}, "timers": {}})
        assert parent.counters["x"] == 1
        assert parent.hists["chunk.seconds"].count == 1


class TestDictForm:
    def test_round_trip(self):
        h = hist_of([0.001, 0.02, 0.02, 50.0, 100.0])
        assert Histogram.from_dict(h.to_dict()) == h

    def test_sparse_buckets(self):
        d = hist_of([0.01]).to_dict()
        assert len(d["buckets"]) == 1  # only the occupied slot ships

    def test_rejects_foreign_bucket_index(self):
        with pytest.raises(ValueError, match="bucket index"):
            Histogram.from_dict(
                {"count": 1, "sum": 1.0, "min": 1.0, "max": 1.0,
                 "buckets": {str(NUM_BUCKETS): 1}}
            )
