"""Tests for pairwise dominance analysis."""

from __future__ import annotations

import pytest

from repro.analysis.compare import _collapse, compare, recommend
from repro.gf2.notation import koopman_to_full
from repro.hd.breakpoints import hd_breakpoint_table


@pytest.fixture(scope="module")
def tables():
    out = {}
    for key, koop in [("802.3", 0x82608EDB), ("BA0DC66B", 0xBA0DC66B),
                      ("8F6E37A0", 0x8F6E37A0)]:
        out[key] = hd_breakpoint_table(
            koopman_to_full(koop), hd_max=8, n_max=1200
        )
    return out


class TestCollapse:
    def test_empty(self):
        assert _collapse([]) == []

    def test_runs(self):
        assert _collapse([1, 2, 3, 7, 8, 10]) == [(1, 3), (7, 8), (10, 10)]


class TestCompare:
    def test_ba0d_vs_8023(self, tables):
        d = compare("BA0DC66B", tables["BA0DC66B"], "802.3", tables["802.3"],
                    n_min=160, n_max=1200)
        # 802.3's HD=6 ends at 268; BA0DC66B holds 6 to 16360: from 269
        # on, BA0DC66B is strictly better; below, 802.3 sometimes wins
        # (it has HD=7/8 bands where BA0DC66B has 6).
        assert any(lo <= 269 <= hi for lo, hi in d.a_better)
        assert (269, 1200) in d.a_better or d.a_better[-1][1] == 1200

    def test_self_comparison_all_ties(self, tables):
        d = compare("x", tables["802.3"], "y", tables["802.3"],
                    n_min=8, n_max=500)
        assert not d.a_better and not d.b_better
        assert d.ties == [(8, 500)]
        assert not d.a_dominates and not d.b_dominates

    def test_render(self, tables):
        d = compare("BA0DC66B", tables["BA0DC66B"], "8F6E37A0",
                    tables["8F6E37A0"], n_min=8, n_max=1200)
        text = d.render()
        assert "vs" in text and "better" in text

    def test_crossovers_detected(self, tables):
        d = compare("802.3", tables["802.3"], "BA0DC66B",
                    tables["BA0DC66B"], n_min=8, n_max=1200)
        assert d.crossover_lengths  # leadership changes at least once


class TestRecommend:
    def test_mtu_range_prefers_hd6_polys(self, tables):
        ranking = recommend(tables, n_min=300, n_max=1200)
        labels = [label for label, _ in ranking]
        # both HD=6-at-length polynomials outrank 802.3 here
        assert labels.index("802.3") == 2
        assert ranking[0][1] == 6

    def test_short_range_favors_high_hd(self, tables):
        ranking = recommend(tables, n_min=8, n_max=60)
        # 802.3 holds HD>=8 through 91 bits: top of this ranking
        assert ranking[0][0] == "802.3"
