"""Tests for polyinfo reports and table/figure renderers."""

from __future__ import annotations

import pytest

from repro.analysis.figures import (
    figure1_series,
    log2_grid,
    render_figure1_ascii,
    series_to_csv,
)
from repro.analysis.polyinfo import report_for
from repro.analysis.tables import render_comparison, render_table1, render_table2
from repro.gf2.notation import koopman_to_full
from repro.hd.breakpoints import hd_breakpoint_table
from repro.search.census import census_of


@pytest.fixture(scope="module")
def crc8_table():
    return hd_breakpoint_table(0x107, hd_max=5, n_max=200)


@pytest.fixture(scope="module")
def crc8_maxim_table():
    return hd_breakpoint_table(0x131, hd_max=5, n_max=200)


class TestPolyReport:
    def test_8023_report_fields(self):
        rep = report_for(koopman_to_full(0x82608EDB))
        assert rep.koopman == 0x82608EDB
        assert rep.normal == 0x04C11DB7
        assert rep.reflected == 0xEDB88320
        assert rep.factor_class == (32,)
        assert rep.taps == 15

    def test_render_contains_key_facts(self, crc8_table):
        rep = report_for(0x107, crc8_table)
        text = rep.render()
        assert "0x107" in text
        assert "{1,7}" in text
        assert "order of x    127" in text
        assert "HD  = 4: " in text

    def test_ba0dc66b_hd2_onset(self):
        rep = report_for(koopman_to_full(0xBA0DC66B))
        assert rep.order == 114695
        assert rep.hd2_onset == 114664


class TestTable1Renderer:
    def test_layout(self, crc8_table, crc8_maxim_table):
        out = render_table1([("CRC-8/ATM", crc8_table), ("CRC-8/MAXIM", crc8_maxim_table)])
        assert "CRC-8/ATM" in out and "CRC-8/MAXIM" in out
        lines = out.splitlines()
        hd_rows = [ln for ln in lines if ln.strip().startswith(("2 ", "4 ", "5 "))]
        assert hd_rows  # HD rows rendered
        # ATM column: HD=4 through 119 then HD=2 open-ended
        assert any("119" in ln for ln in lines)
        assert any("+" in ln for ln in lines)


class TestTable2Renderer:
    def test_layout_and_law(self):
        census = census_of([0x107, 0x137, 0b101011])
        out = render_table2(census)
        assert "{1,7}" in out
        assert "total" in out
        assert "divisible by (x+1)" in out

    def test_violators_reported(self):
        out = render_table2(census_of([0b1011]))
        assert "NOT divisible" in out


class TestFigure1:
    def test_grid(self):
        g = log2_grid(64, 512)
        assert g == [64, 128, 256, 512]

    def test_series_and_csv(self, crc8_table, crc8_maxim_table):
        series = figure1_series(
            [("atm", crc8_table), ("maxim", crc8_maxim_table)],
            lengths=[16, 64, 128, 190],
        )
        assert [n for n, _ in series["atm"]] == [16, 64, 128, 190]
        assert dict(series["atm"])[64] == 4
        assert dict(series["atm"])[128] == 2
        csv = series_to_csv(series)
        assert csv.splitlines()[0] == "data_word_bits,atm,maxim"
        assert len(csv.splitlines()) == 5

    def test_ascii_render(self, crc8_table):
        series = figure1_series([("atm", crc8_table)], lengths=[16, 64, 128])
        art = render_figure1_ascii(series, hd_min=2, hd_max=5)
        assert "A = atm" in art
        assert art.count("\n") >= 5


class TestComparisonRenderer:
    def test_alignment(self):
        out = render_comparison(
            [("row1", {"paper": 16360, "measured": 16360}),
             ("row2", {"paper": 2974, "measured": 2974})],
            ["paper", "measured"],
        )
        assert "paper" in out and "16360" in out
